//! Canonical serialization — the role W3C C14N plays for XML Signature.
//!
//! Both signer and verifier must obtain identical bytes for the covered
//! elements, even after the document has been parsed and re-serialized by a
//! different implementation. The canonical form:
//!
//! * attributes sorted lexicographically by name,
//! * no self-closing tags (`<a></a>`, never `<a/>`),
//! * text and attribute values escaped exactly as in [`crate::escape`],
//! * no insignificant whitespace added.
//!
//! Since our writer never emits insignificant whitespace and the parser
//! preserves text verbatim, canonical bytes are stable across round trips.

use crate::escape::{escape_attr_into, escape_text_into};
use crate::node::{Element, Node};
use std::sync::Arc;

/// Canonical byte serialization of one element subtree.
pub fn canonicalize(el: &Element) -> Vec<u8> {
    canonicalize_shared(el).as_ref().clone()
}

/// Canonical bytes of one subtree, memoized on the element. The first call
/// walks the tree; later calls on the unmutated element return the shared
/// buffer in O(1). Mutating the element through any `&mut` accessor drops
/// the memo (see [`Element::invalidate_canon`]).
pub fn canonicalize_shared(el: &Element) -> Arc<Vec<u8>> {
    if let Some(cached) = el.canon_cached() {
        return Arc::clone(cached);
    }
    let mut out = Vec::new();
    write_canon(el, &mut out);
    count_alloc(out.len() as u64);
    let bytes = Arc::new(out);
    el.canon_store(Arc::clone(&bytes));
    bytes
}

/// Canonical bytes of a sequence of subtrees, length-prefix framed so that
/// the concatenation is injective (no boundary ambiguity between parts).
/// Each part comes from the per-element memo when available.
pub fn canonicalize_all<'a>(els: impl IntoIterator<Item = &'a Element>) -> Vec<u8> {
    let mut out = Vec::new();
    canonicalize_all_into(els, &mut out);
    count_alloc(out.len() as u64);
    out
}

/// The buffer-reuse form of [`canonicalize_all`]: append the framed
/// canonical bytes to `out` instead of allocating a fresh vector. Pairs
/// with [`CanonArena`] for the steady-state zero-allocation path.
pub fn canonicalize_all_into<'a>(els: impl IntoIterator<Item = &'a Element>, out: &mut Vec<u8>) {
    for el in els {
        let part = canonicalize_shared(el);
        out.extend_from_slice(&(part.len() as u64).to_be_bytes());
        out.extend_from_slice(&part);
    }
}

thread_local! {
    /// Bytes of canonical output that required a fresh heap allocation on
    /// this thread — the deterministic cost measure the scaling bench
    /// tracks to show the arena path flattening the incremental slope.
    static CANON_ALLOC: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn count_alloc(bytes: u64) {
    CANON_ALLOC.with(|c| c.set(c.get() + bytes));
}

/// Canonicalization bytes freshly allocated by the current thread so far
/// (memo builds, [`canonicalize_all`] result vectors, and arena *growth* —
/// an arena reuse that fits in existing capacity counts zero).
pub fn canon_alloc_bytes() -> u64 {
    CANON_ALLOC.with(std::cell::Cell::get)
}

/// Reset the current thread's canonicalization-allocation counter.
pub fn canon_alloc_reset() {
    CANON_ALLOC.with(|c| c.set(0));
}

/// A reusable canonicalization buffer.
///
/// Incremental verification canonicalizes the same growing prefix on every
/// hop — with [`canonicalize_all`] that is a fresh `Vec` allocation of the
/// whole prefix each time, even though every element's bytes come straight
/// out of the memo. An arena keeps one buffer alive across calls: the
/// buffer is cleared (capacity retained) and refilled, so the steady state
/// allocates nothing and the per-hop cost is a pure memcpy of memoized
/// parts.
#[derive(Debug, Default)]
pub struct CanonArena {
    buf: Vec<u8>,
}

impl CanonArena {
    /// An arena with no buffer yet; the first use sizes it.
    pub fn new() -> CanonArena {
        CanonArena::default()
    }

    /// An arena pre-sized to `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> CanonArena {
        CanonArena { buf: Vec::with_capacity(capacity) }
    }

    /// Framed canonical bytes of `els` (same framing as
    /// [`canonicalize_all`]), borrowed from the arena's buffer. The buffer
    /// is reused across calls; only growth beyond the high-water mark
    /// allocates.
    pub fn canonicalize_all<'a>(&mut self, els: impl IntoIterator<Item = &'a Element>) -> &[u8] {
        let before = self.buf.capacity();
        self.buf.clear();
        canonicalize_all_into(els, &mut self.buf);
        let grown = self.buf.capacity().saturating_sub(before);
        if grown > 0 {
            count_alloc(grown as u64);
        }
        &self.buf
    }

    /// Current buffer capacity (the arena's high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

fn write_canon(el: &Element, out: &mut Vec<u8>) {
    // A child whose canonical form is already memoized contributes a
    // memcpy instead of a recursive walk.
    if let Some(cached) = el.canon_cached() {
        out.extend_from_slice(cached);
        return;
    }
    out.push(b'<');
    out.extend_from_slice(el.name.as_bytes());
    let mut attrs: Vec<&(String, String)> = el.attrs.iter().collect();
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    for (k, v) in attrs {
        out.push(b' ');
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b"=\"");
        escape_attr_into(v, out);
        out.push(b'"');
    }
    out.push(b'>');
    for child in &el.children {
        match child {
            Node::Element(e) => write_canon(e, out),
            Node::Text(t) => escape_text_into(t, out),
        }
    }
    out.extend_from_slice(b"</");
    out.extend_from_slice(el.name.as_bytes());
    out.push(b'>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::writer::to_string;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn attribute_order_is_normalized() {
        let a = Element::new("e").attr("b", "2").attr("a", "1");
        let b = Element::new("e").attr("a", "1").attr("b", "2");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn no_self_closing() {
        assert_eq!(canonicalize(&Element::new("a")), b"<a></a>");
    }

    #[test]
    fn differs_on_content_change() {
        let a = Element::new("e").text("x");
        let b = Element::new("e").text("y");
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn stable_across_parse_roundtrip() {
        let e = Element::new("doc")
            .attr("z", "last")
            .attr("a", "first")
            .child(Element::new("c").text("body & <text>"))
            .text("tail\"quote");
        let reparsed = parse(&to_string(&e)).unwrap();
        assert_eq!(canonicalize(&e), canonicalize(&reparsed));
    }

    #[test]
    fn framed_concatenation_is_injective() {
        // <a>bc</a> vs <a>b</a><c/> style boundary confusion must not collide.
        let one = [Element::new("a").text("bc")];
        let two = [Element::new("a").text("b"), Element::new("c")];
        assert_ne!(canonicalize_all(one.iter()), canonicalize_all(two.iter()));
    }

    #[test]
    fn empty_sequence() {
        assert!(canonicalize_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn arena_matches_allocating_path() {
        let els =
            [Element::new("a").text("bc"), Element::new("b").attr("k", "v"), Element::new("c")];
        let mut arena = CanonArena::new();
        assert_eq!(arena.canonicalize_all(els.iter()), canonicalize_all(els.iter()).as_slice());
        // and again, reusing the buffer
        assert_eq!(arena.canonicalize_all(els.iter()), canonicalize_all(els.iter()).as_slice());
        assert!(arena.canonicalize_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn arena_reuse_allocates_nothing_in_steady_state() {
        let els: Vec<Element> =
            (0..8).map(|i| Element::new(format!("e{i}")).text("payload")).collect();
        let mut arena = CanonArena::new();
        let _ = arena.canonicalize_all(els.iter()); // warm: memos + buffer
        let cap = arena.capacity();
        canon_alloc_reset();
        for _ in 0..10 {
            let _ = arena.canonicalize_all(els.iter());
        }
        assert_eq!(canon_alloc_bytes(), 0, "warm arena reuse must not allocate");
        assert_eq!(arena.capacity(), cap, "capacity is the high-water mark");

        // the allocating path keeps paying per call
        canon_alloc_reset();
        let bytes = canonicalize_all(els.iter());
        assert!(canon_alloc_bytes() >= bytes.len() as u64);
    }

    #[test]
    fn arena_sees_mutations() {
        let mut e = Element::new("e").attr("a", "1");
        let mut arena = CanonArena::new();
        let before = arena.canonicalize_all([&e]).to_vec();
        e.set_attr("a", "2");
        let after = arena.canonicalize_all([&e]).to_vec();
        assert_ne!(before, after, "memo invalidation must reach the arena path");
        assert_eq!(after, canonicalize_all([&e]));
    }

    #[test]
    fn memo_is_reused_until_mutation() {
        let mut e = Element::new("e").attr("a", "1").child(Element::new("c").text("x"));
        let first = canonicalize_shared(&e);
        let second = canonicalize_shared(&e);
        assert!(Arc::ptr_eq(&first, &second), "second call must reuse the memo");

        e.set_attr("a", "2");
        let third = canonicalize_shared(&e);
        assert!(!Arc::ptr_eq(&first, &third), "mutation must drop the memo");
        assert_ne!(*first, *third);
        assert_eq!(
            *third,
            canonicalize(&Element::new("e").attr("a", "2").child(Element::new("c").text("x")))
        );
    }

    #[test]
    fn memo_invalidated_by_every_mut_accessor() {
        let build = || Element::new("e").attr("a", "1").child(Element::new("c").text("x"));

        // set_attr
        let mut e = build();
        let before = canonicalize(&e);
        e.set_attr("b", "2");
        assert_ne!(before, canonicalize(&e));

        // push_child
        let mut e = build();
        let before = canonicalize(&e);
        e.push_child(Element::new("d"));
        assert_ne!(before, canonicalize(&e));

        // remove_children
        let mut e = build();
        let before = canonicalize(&e);
        e.remove_children("c");
        assert_ne!(before, canonicalize(&e));

        // find_child_mut, then mutate the child through the reference
        let mut e = build();
        let before = canonicalize(&e);
        e.find_child_mut("c").unwrap().set_attr("k", "v");
        assert_ne!(before, canonicalize(&e));

        // direct field mutation + explicit invalidate_canon
        let mut e = build();
        let before = canonicalize(&e);
        e.children.clear();
        e.invalidate_canon();
        assert_ne!(before, canonicalize(&e));
    }

    #[test]
    fn clone_keeps_memo_but_diverges_safely() {
        let original = Element::new("e").text("shared");
        let first = canonicalize_shared(&original);
        let mut copy = original.clone();
        assert!(Arc::ptr_eq(&first, &canonicalize_shared(&copy)));
        copy.set_attr("changed", "yes");
        assert_ne!(canonicalize(&copy), canonicalize(&original));
        // the original's memo is untouched by the clone's mutation
        assert!(Arc::ptr_eq(&first, &canonicalize_shared(&original)));
    }

    #[test]
    fn cached_child_contributes_to_fresh_parent() {
        let mut child = Element::new("c").text("deep & dark");
        let direct = canonicalize(&child);
        let _ = canonicalize_shared(&child); // memoize the child
        child.invalidate_canon();
        let _ = canonicalize_shared(&child); // re-memoize
        let parent = Element::new("p").child(child.clone());
        let via_parent = canonicalize(&parent);
        let mut expect = Vec::new();
        expect.extend_from_slice(b"<p>");
        expect.extend_from_slice(&direct);
        expect.extend_from_slice(b"</p>");
        assert_eq!(via_parent, expect);
    }

    // Strategy for random small element trees.
    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,6}"
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // printable-ish text including XML specials
        proptest::collection::vec(
            prop_oneof![
                any::<char>().prop_filter("no ctrl", |c| !c.is_control()),
                Just('<'),
                Just('&'),
                Just('"'),
            ],
            0..12,
        )
        .prop_map(|v| v.into_iter().collect())
    }

    fn arb_element() -> impl Strategy<Value = Element> {
        let leaf = (arb_name(), arb_text()).prop_map(|(n, t)| {
            if t.is_empty() {
                Element::new(n)
            } else {
                Element::new(n).text(t)
            }
        });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                arb_name(),
                proptest::collection::vec((arb_name(), arb_text()), 0..3),
                proptest::collection::vec(inner, 0..4),
            )
                .prop_map(|(name, attrs, children)| {
                    let mut e = Element::new(name);
                    for (k, v) in attrs {
                        e.set_attr(k, v);
                    }
                    for c in children {
                        e.push_child(c);
                    }
                    e
                })
        })
    }

    proptest! {
        /// The fundamental signature-stability property: canonical bytes are
        /// invariant under serialize→parse round trips.
        #[test]
        fn prop_canon_stable_roundtrip(e in arb_element()) {
            let wire = to_string(&e);
            let reparsed = parse(&wire).unwrap();
            prop_assert_eq!(canonicalize(&e), canonicalize(&reparsed));
        }

        /// Parsing the wire format reproduces an equivalent tree (text node
        /// merging aside, which canonical bytes capture).
        #[test]
        fn prop_wire_roundtrip_canonical(e in arb_element()) {
            let once = parse(&to_string(&e)).unwrap();
            let twice = parse(&to_string(&once)).unwrap();
            prop_assert_eq!(once, twice);
        }
    }
}
