//! Element-wise encryption in the style of W3C XML Encryption.
//!
//! An element subtree is replaced by an `<EncryptedData>` element:
//!
//! ```xml
//! <EncryptedData alg="chacha20+hmac-sha256" name="OriginalName">
//!   <CipherValue>hex…</CipherValue>
//!   <KeyWrap recipient="amy">hex…</KeyWrap>
//!   <KeyWrap recipient="john">hex…</KeyWrap>
//! </EncryptedData>
//! ```
//!
//! The subtree's canonical bytes are encrypted once under a fresh content
//! key (secret box); the content key is wrapped to each authorized
//! recipient's X25519 public key (sealed box). This realizes the paper's
//! requirement that "an XML element … can be encrypted by different public
//! keys of users or groups … so as to have only a limited number of users
//! able to read the data" (§2.3.1) with a single ciphertext.

use crate::canon::canonicalize;
use crate::node::Element;
use crate::parser::parse;
use dra_crypto::b64;
use dra_crypto::sealed;
use dra_crypto::x25519::{X25519PublicKey, X25519Secret};

/// Element name of encrypted payloads.
pub const ENCRYPTED_DATA: &str = "EncryptedData";
const ALG: &str = "chacha20+hmac-sha256";

/// An authorized reader of an encrypted element.
#[derive(Clone, Debug)]
pub struct Recipient {
    /// Logical identity (participant name) used to select the key wrap.
    pub id: String,
    /// The recipient's encryption public key.
    pub key: X25519PublicKey,
}

impl Recipient {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, key: X25519PublicKey) -> Recipient {
        Recipient { id: id.into(), key }
    }
}

/// Errors from decrypting an `<EncryptedData>` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncryptError {
    /// The element is not a well-formed `<EncryptedData>`.
    Malformed(String),
    /// No key wrap addressed to the requesting recipient.
    NotARecipient,
    /// Cryptographic failure (wrong key, tampered ciphertext).
    Crypto,
    /// The decrypted plaintext failed to parse back into an element.
    BadPlaintext,
}

impl std::fmt::Display for EncryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncryptError::Malformed(m) => write!(f, "malformed EncryptedData: {m}"),
            EncryptError::NotARecipient => write!(f, "no key wrap for this recipient"),
            EncryptError::Crypto => write!(f, "decryption failed"),
            EncryptError::BadPlaintext => write!(f, "plaintext is not a valid element"),
        }
    }
}

impl std::error::Error for EncryptError {}

/// Encrypt `el` so that exactly the given recipients can recover it.
///
/// Panics if `recipients` is empty — encrypting to nobody would destroy the
/// data, which is never what a security policy means.
pub fn encrypt_element(el: &Element, recipients: &[Recipient]) -> Element {
    assert!(!recipients.is_empty(), "element-wise encryption requires at least one recipient");
    let plaintext = canonicalize(el);
    let mut content_key = [0u8; 32];
    dra_crypto::random_bytes(&mut content_key);
    let ciphertext = sealed::secretbox_seal(&content_key, &plaintext);

    let mut out = Element::new(ENCRYPTED_DATA)
        .attr("alg", ALG)
        .attr("name", el.name.clone())
        .child(Element::new("CipherValue").text(b64::encode(&ciphertext)));
    for r in recipients {
        let wrapped = sealed::seal(&r.key, &content_key);
        out.push_child(
            Element::new("KeyWrap").attr("recipient", r.id.clone()).text(b64::encode(&wrapped)),
        );
    }
    out
}

/// True if the element is an `<EncryptedData>` wrapper.
pub fn is_encrypted(el: &Element) -> bool {
    el.name == ENCRYPTED_DATA
}

/// List the recipient ids that can open this `<EncryptedData>`.
pub fn recipients_of(el: &Element) -> Vec<&str> {
    el.find_children("KeyWrap").filter_map(|k| k.get_attr("recipient")).collect()
}

/// Decrypt an `<EncryptedData>` element as `recipient_id`, holding `secret`.
pub fn decrypt_element(
    el: &Element,
    recipient_id: &str,
    secret: &X25519Secret,
) -> Result<Element, EncryptError> {
    if el.name != ENCRYPTED_DATA {
        return Err(EncryptError::Malformed(format!(
            "expected <{ENCRYPTED_DATA}>, found <{}>",
            el.name
        )));
    }
    let cipher_hex = el
        .find_child("CipherValue")
        .ok_or_else(|| EncryptError::Malformed("missing CipherValue".into()))?
        .text_content();
    let ciphertext =
        b64::decode(&cipher_hex).ok_or_else(|| EncryptError::Malformed("bad base64".into()))?;

    let wrap = el
        .find_children("KeyWrap")
        .find(|k| k.get_attr("recipient") == Some(recipient_id))
        .ok_or(EncryptError::NotARecipient)?;
    let wrapped = b64::decode(&wrap.text_content())
        .ok_or_else(|| EncryptError::Malformed("bad key wrap base64".into()))?;

    let content_key_vec = sealed::open(secret, &wrapped).map_err(|_| EncryptError::Crypto)?;
    let content_key: [u8; 32] = content_key_vec.try_into().map_err(|_| EncryptError::Crypto)?;
    let plaintext =
        sealed::secretbox_open(&content_key, &ciphertext).map_err(|_| EncryptError::Crypto)?;
    let text = String::from_utf8(plaintext).map_err(|_| EncryptError::BadPlaintext)?;
    parse(&text).map_err(|_| EncryptError::BadPlaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(seed: u8) -> (X25519Secret, X25519PublicKey) {
        let s = X25519Secret::from_bytes([seed; 32]);
        let p = s.public_key();
        (s, p)
    }

    fn payload() -> Element {
        Element::new("Field").attr("name", "amount").text("12,500 USD")
    }

    #[test]
    fn single_recipient_roundtrip() {
        let (sec, pubk) = keys(1);
        let enc = encrypt_element(&payload(), &[Recipient::new("amy", pubk)]);
        assert!(is_encrypted(&enc));
        assert_eq!(enc.get_attr("name"), Some("Field"));
        let dec = decrypt_element(&enc, "amy", &sec).unwrap();
        assert_eq!(dec, payload());
    }

    #[test]
    fn multi_recipient_any_can_open() {
        let (sec_a, pub_a) = keys(1);
        let (sec_b, pub_b) = keys(2);
        let enc = encrypt_element(
            &payload(),
            &[Recipient::new("amy", pub_a), Recipient::new("bob", pub_b)],
        );
        assert_eq!(recipients_of(&enc), vec!["amy", "bob"]);
        assert_eq!(decrypt_element(&enc, "amy", &sec_a).unwrap(), payload());
        assert_eq!(decrypt_element(&enc, "bob", &sec_b).unwrap(), payload());
    }

    #[test]
    fn non_recipient_cannot_open() {
        let (_, pub_a) = keys(1);
        let (sec_c, _) = keys(3);
        let enc = encrypt_element(&payload(), &[Recipient::new("amy", pub_a)]);
        assert_eq!(decrypt_element(&enc, "carol", &sec_c), Err(EncryptError::NotARecipient));
        // Even claiming to be amy fails with the wrong key.
        assert_eq!(decrypt_element(&enc, "amy", &sec_c), Err(EncryptError::Crypto));
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let (sec, pubk) = keys(1);
        let mut enc = encrypt_element(&payload(), &[Recipient::new("amy", pubk)]);
        // flip a hex digit of the cipher value
        let cv = enc.find_child_mut("CipherValue").unwrap();
        let mut text = cv.text_content();
        let flipped = if text.as_bytes()[10] == b'0' { "1" } else { "0" };
        text.replace_range(10..11, flipped);
        cv.children.clear();
        cv.children.push(crate::node::Node::Text(text));
        assert_eq!(decrypt_element(&enc, "amy", &sec), Err(EncryptError::Crypto));
    }

    #[test]
    fn ciphertext_survives_wire_roundtrip() {
        let (sec, pubk) = keys(7);
        let enc = encrypt_element(&payload(), &[Recipient::new("amy", pubk)]);
        let reparsed = crate::parser::parse(&crate::writer::to_string(&enc)).unwrap();
        assert_eq!(decrypt_element(&reparsed, "amy", &sec).unwrap(), payload());
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn empty_recipients_panics() {
        encrypt_element(&payload(), &[]);
    }

    #[test]
    fn malformed_input_errors() {
        let (sec, _) = keys(1);
        let not_enc = Element::new("Plain");
        assert!(matches!(decrypt_element(&not_enc, "amy", &sec), Err(EncryptError::Malformed(_))));
        let no_cipher = Element::new(ENCRYPTED_DATA);
        assert!(matches!(
            decrypt_element(&no_cipher, "amy", &sec),
            Err(EncryptError::Malformed(_))
        ));
    }

    #[test]
    fn nested_structure_preserved() {
        let (sec, pubk) = keys(9);
        let complex =
            Element::new("Form").child(Element::new("Field").attr("name", "x").text("1")).child(
                Element::new("Group").child(Element::new("Field").attr("name", "y").text("<&\">")),
            );
        let enc = encrypt_element(&complex, &[Recipient::new("p", pubk)]);
        let dec = decrypt_element(&enc, "p", &sec).unwrap();
        // canonical equality (attribute order may normalize)
        assert_eq!(crate::canon::canonicalize(&dec), crate::canon::canonicalize(&complex));
    }
}
