//! Full-document verification — what every AEA performs first on receiving
//! a DRA4WfMS document ("parses X and verifies all the embedded digital
//! signatures therein so as to ensure that the workflow definition is legal
//! and all the stored execution results of previously executed activities
//! are valid", §2.1), and what a portal server performs before storing a
//! document into the pool.

use crate::document::{CerView, DraDocument};
use crate::error::{WfError, WfResult};
use crate::identity::Directory;
use crate::model::WorkflowDefinition;
use crate::sealed::{prefix_digest, TrustMark};
use dra_xml::canon::canonicalize_all;

use dra_xml::Element;

/// Outcome of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// The document's unique process id.
    pub process_id: String,
    /// Executed activity iterations, in document order.
    pub cers: Vec<crate::document::CerKey>,
    /// Total signatures checked (designer + participants + TFC) — the
    /// "number of signatures to verify" column of Tables 1 and 2.
    pub signatures_verified: usize,
    /// True when the last CER is an intermediate (TFC-bound) one.
    pub ends_with_intermediate: bool,
}

/// The canonical bytes the TFC's attestation signature covers:
/// `[Header, TfcSealed, participant signature, Result, Timestamp]`.
pub fn tfc_attest_bytes(header: &Element, cer: &CerView<'_>) -> WfResult<Vec<u8>> {
    let sealed = cer
        .tfc_sealed()
        .ok_or_else(|| WfError::Malformed(format!("CER {} lacks TfcSealed", cer.key)))?;
    let psig = cer.participant_signature()?;
    let result =
        cer.result().ok_or_else(|| WfError::Malformed(format!("CER {} lacks Result", cer.key)))?;
    let ts = cer
        .timestamp()
        .ok_or_else(|| WfError::Malformed(format!("CER {} lacks Timestamp", cer.key)))?;
    Ok(canonicalize_all([header, sealed, psig, result, ts]))
}

/// One planned signature check: verify `signature` over `bytes` under
/// `signer`. Tasks are independent once planned, which is what makes
/// [`verify_document_parallel`] possible.
struct SigTask {
    label: String,
    signer: dra_crypto::ed25519::PublicKey,
    bytes: Vec<u8>,
    signature: dra_crypto::ed25519::Signature,
}

impl SigTask {
    fn run(&self) -> WfResult<()> {
        if self.signer.verify(&self.bytes, &self.signature) {
            Ok(())
        } else {
            Err(WfError::Verify(format!("{} signature invalid", self.label)))
        }
    }
}

/// How much of the document still needs cryptographic checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VerifyScope {
    /// Check everything: designer signature plus every CER.
    Full,
    /// The first `n` CERs (and the designer signature) are pinned by a
    /// byte-identical verified prefix; emit signature checks only for CERs
    /// appended after them. Structural checks and amendment folding still
    /// run over the whole document — they are cheap and the folded
    /// definition is needed to judge the new CERs.
    TrustedPrefix(usize),
}

/// Sequential structural pass: check participants and document structure,
/// fold amendments, and emit one [`SigTask`] per embedded signature inside
/// `scope`.
fn plan_verification(
    doc: &DraDocument,
    directory: &Directory,
    def: &WorkflowDefinition,
    scope: VerifyScope,
) -> WfResult<(Vec<SigTask>, VerificationReport)> {
    use dra_xml::sig::parse_signature;

    let skip_cers = match scope {
        VerifyScope::Full => 0,
        VerifyScope::TrustedPrefix(n) => n,
    };
    let mut tasks = Vec::new();

    // (2) designer signature — pinned by the prefix digest when trusted
    if scope == VerifyScope::Full {
        let designer = directory.get(&def.designer)?;
        let block = parse_signature(doc.designer_signature()?)
            .map_err(|e| WfError::Verify(format!("designer signature: {e}")))?;
        if block.signer != designer.sign {
            return Err(WfError::Verify("designer signature: unexpected signer".into()));
        }
        tasks.push(SigTask {
            label: "designer".into(),
            signer: block.signer,
            bytes: doc.definition_bytes()?,
            signature: block.signature,
        });
    }

    // the effective definition/policy, updated as amendments are planned
    let mut eff_def = def.clone();
    let mut eff_pol = doc.security_policy()?;

    let cers = doc.cers()?;
    let mut ends_with_intermediate = false;
    let header = doc.header()?;
    for (idx, cer) in cers.iter().enumerate() {
        let trusted = idx < skip_cers;
        // (3) participant assignment — amendments are executed by the
        // workflow designer; regular activities by their assigned
        // participant under the definition in force at that point
        let expected = if crate::amendment::is_amendment_key(&cer.key) {
            eff_def.designer.clone()
        } else {
            eff_def.activity(&cer.key.activity)?.participant.clone()
        };
        if expected != cer.participant {
            return Err(WfError::Verify(format!(
                "CER {}: executed by '{}' but definition assigns '{}'",
                cer.key, cer.participant, expected
            )));
        }

        let sealed = cer.tfc_sealed();
        let result = cer.result();
        let body = sealed.or(result).ok_or_else(|| {
            WfError::Malformed(format!("CER {} has neither Result nor TfcSealed", cer.key))
        })?;
        if !trusted {
            let pid = directory.get(&cer.participant)?;
            let block = parse_signature(cer.participant_signature()?)
                .map_err(|e| WfError::Verify(format!("CER {}: {e}", cer.key)))?;
            if block.signer != pid.sign {
                return Err(WfError::Verify(format!(
                    "CER {} participant signature: unexpected signer",
                    cer.key
                )));
            }
            tasks.push(SigTask {
                label: format!("CER {} participant", cer.key),
                signer: block.signer,
                bytes: doc.cascade_bytes(body, &cer.preds)?,
                signature: block.signature,
            });
        }

        // fold verified amendments into the effective definition
        if crate::amendment::is_amendment_key(&cer.key) {
            let result_el = result
                .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Result", cer.key)))?;
            let delta_el = result_el
                .find_child("Delta")
                .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Delta", cer.key)))?;
            let delta = crate::amendment::DefinitionDelta::from_xml(delta_el)?;
            let (d, p) = delta.apply(&eff_def, &eff_pol)?;
            eff_def = d;
            eff_pol = p;
        }

        let is_intermediate = sealed.is_some() && result.is_none();
        if is_intermediate {
            if idx + 1 != cers.len() {
                return Err(WfError::Malformed(format!(
                    "intermediate CER {} is not the last CER",
                    cer.key
                )));
            }
            ends_with_intermediate = true;
        } else if sealed.is_some() && !trusted {
            // advanced-model final CER: TFC attestation required
            let tfc_name = def.tfc.as_deref().ok_or_else(|| {
                WfError::Verify(format!(
                    "CER {} carries TFC data but definition names no TFC",
                    cer.key
                ))
            })?;
            let tfc_id = directory.get(tfc_name)?;
            let tfc_sig = cer
                .tfc_signature()
                .ok_or_else(|| WfError::Verify(format!("CER {} missing TFC signature", cer.key)))?;
            let block = parse_signature(tfc_sig)
                .map_err(|e| WfError::Verify(format!("CER {} TFC: {e}", cer.key)))?;
            if block.signer != tfc_id.sign {
                return Err(WfError::Verify(format!(
                    "CER {} TFC signature: unexpected signer",
                    cer.key
                )));
            }
            tasks.push(SigTask {
                label: format!("CER {} TFC", cer.key),
                signer: block.signer,
                bytes: tfc_attest_bytes(header, cer)?,
                signature: block.signature,
            });
        }
    }

    let report = VerificationReport {
        process_id: doc.process_id()?,
        cers: cers.iter().map(|c| c.key.clone()).collect(),
        signatures_verified: tasks.len(),
        ends_with_intermediate,
    };
    Ok((tasks, report))
}

/// Verify every signature embedded in `doc` against `directory`.
///
/// Checks, in order:
/// 1. the embedded workflow definition is structurally valid;
/// 2. the designer's signature over `[Header, WorkflowDefinition,
///    SecurityDefinition]` — a forged or altered definition fails here;
/// 3. for every CER: the recorded participant is the one the definition
///    (as amended up to that point) assigns to the activity, its cascade
///    signature verifies under that participant's key, and all referenced
///    predecessors exist;
/// 4. for advanced-model CERs, the TFC's attestation signature.
///
/// An *intermediate* CER (sealed to the TFC, not yet re-encrypted) is only
/// legal as the final CER of an in-flight document.
pub fn verify_document(doc: &DraDocument, directory: &Directory) -> WfResult<VerificationReport> {
    let def = doc.workflow_definition()?;
    def.validate()?;
    verify_document_with_def(doc, directory, &def)
}

/// Variant for callers that already parsed/validated the definition.
pub fn verify_document_with_def(
    doc: &DraDocument,
    directory: &Directory,
    def: &WorkflowDefinition,
) -> WfResult<VerificationReport> {
    let (tasks, report) = plan_verification(doc, directory, def, VerifyScope::Full)?;
    for t in &tasks {
        t.run()?;
    }
    Ok(report)
}

/// Issue a [`TrustMark`] pinning the whole current document, given a report
/// from a verification pass that just succeeded on it. `prior_signatures`
/// is the signature-check count already spent on the pinned prefix by
/// earlier passes (0 after a full verification).
pub fn trust_mark_for(
    doc: &DraDocument,
    report: &VerificationReport,
    prior_signatures: usize,
) -> WfResult<TrustMark> {
    Ok(TrustMark {
        process_id: report.process_id.clone(),
        verified_cers: report.cers.len(),
        prefix_digest: prefix_digest(doc, report.cers.len())?,
        signatures_verified: prior_signatures + report.signatures_verified,
    })
}

/// Outcome of [`verify_incremental`].
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// The verification report. `signatures_verified` counts only the
    /// checks executed *this pass* (so with a matching mark and k new CERs
    /// it is exactly the k participant checks plus any new TFC
    /// attestation).
    pub report: VerificationReport,
    /// CERs skipped because the trust mark's prefix digest matched.
    pub reused_cers: usize,
    /// True when the mark was unusable (missing, wrong process, or digest
    /// mismatch) and a full verification ran instead.
    pub fell_back: bool,
    /// A fresh mark pinning the whole document as now verified; hand it to
    /// the next hop.
    pub mark: TrustMark,
}

/// Incremental verification: re-check only the CERs appended since `mark`
/// was issued, after proving the marked prefix byte-identical via its
/// canonical digest.
///
/// Fallback semantics keep security identical to [`verify_document`]: if
/// the mark is absent, names a different process, claims more CERs than
/// the document has, or its digest no longer matches (any tamper —
/// or any legitimate in-place change, like a TFC finalizing a previously
/// intermediate CER), the *full* verification runs and its verdict stands.
/// A tampered prefix therefore still fails loudly, stale mark or not.
pub fn verify_incremental(
    doc: &DraDocument,
    directory: &Directory,
    mark: Option<&TrustMark>,
) -> WfResult<IncrementalOutcome> {
    let def = doc.workflow_definition()?;
    def.validate()?;

    let usable_prefix = match mark {
        Some(m) => {
            let total = doc.cers()?.len();
            if m.process_id == doc.process_id()?
                && m.verified_cers <= total
                && prefix_digest(doc, m.verified_cers)? == m.prefix_digest
            {
                Some(m.verified_cers)
            } else {
                None
            }
        }
        None => None,
    };

    let (scope, fell_back) = match usable_prefix {
        Some(n) => (VerifyScope::TrustedPrefix(n), false),
        None => (VerifyScope::Full, mark.is_some()),
    };
    let (tasks, report) = plan_verification(doc, directory, &def, scope)?;
    for t in &tasks {
        t.run()?;
    }

    let reused_cers = match scope {
        VerifyScope::TrustedPrefix(n) => n,
        VerifyScope::Full => 0,
    };
    // Cumulative count carries over only when the mark was actually used.
    let prior = match (usable_prefix, mark) {
        (Some(_), Some(m)) => m.signatures_verified,
        _ => 0,
    };
    let mark = trust_mark_for(doc, &report, prior)?;
    Ok(IncrementalOutcome { report, reused_cers, fell_back, mark })
}

/// Parallel variant: the sequential structural pass plans one independent
/// signature check per embedded signature, then `threads` worker threads
/// execute the checks concurrently. Signature verification dominates α for
/// long cascades (see Table 1/C1), so this parallelizes the hot loop.
pub fn verify_document_parallel(
    doc: &DraDocument,
    directory: &Directory,
    threads: usize,
) -> WfResult<VerificationReport> {
    let def = doc.workflow_definition()?;
    def.validate()?;
    let (tasks, report) = plan_verification(doc, directory, &def, VerifyScope::Full)?;
    run_tasks_parallel(&tasks, threads)?;
    Ok(report)
}

fn run_tasks_parallel(tasks: &[SigTask], threads: usize) -> WfResult<()> {
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads <= 1 || tasks.len() <= 1 {
        for t in tasks {
            t.run()?;
        }
        return Ok(());
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<WfResult<()>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(t) = tasks.get(i) else { return Ok(()) };
                    t.run()?;
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("verifier thread")).collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Verify a batch of independent documents in parallel (the portal-server
/// bulk path): each document gets its own full verification; failures are
/// reported per document.
pub fn verify_documents_parallel(
    docs: &[DraDocument],
    directory: &Directory,
    threads: usize,
) -> Vec<WfResult<VerificationReport>> {
    let threads = threads.max(1).min(docs.len().max(1));
    if threads <= 1 {
        return docs.iter().map(|d| verify_document(d, directory)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<WfResult<VerificationReport>>> =
        (0..docs.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<Option<WfResult<VerificationReport>>>> =
        out.iter_mut().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(doc) = docs.get(i) else { break };
                *slots[i].lock().expect("slot") = Some(verify_document(doc, directory));
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().expect("slot").expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DraDocument;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;

    fn fixture() -> (WorkflowDefinition, SecurityPolicy, Credentials, Directory) {
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "p");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["x"])
            .flow_end("A")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &peter]);
        (def, SecurityPolicy::public(), designer, dir)
    }

    #[test]
    fn initial_document_verifies() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        let report = verify_document(&doc, &dir).unwrap();
        assert_eq!(report.signatures_verified, 1);
        assert!(report.cers.is_empty());
        assert!(!report.ends_with_intermediate);
        assert_eq!(report.process_id, "pid");
    }

    #[test]
    fn altered_definition_detected() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        // Superuser-style tamper: change the assigned participant in the
        // stored document without re-signing.
        let mut tampered = doc.to_xml_string();
        tampered = tampered.replace("participant=\"peter\"", "participant=\"mallory\"");
        let doc2 = DraDocument::parse(&tampered).unwrap();
        // verification must fail — either unknown identity or bad signature
        assert!(verify_document(&doc2, &dir).is_err());
    }

    #[test]
    fn altered_process_id_detected() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid-A").unwrap();
        let tampered = doc.to_xml_string().replace("pid-A", "pid-B");
        let doc2 = DraDocument::parse(&tampered).unwrap();
        let err = verify_document(&doc2, &dir).unwrap_err();
        assert!(matches!(err, WfError::Verify(_)), "replay/renumber attack detected: {err}");
    }

    #[test]
    fn unknown_designer_rejected() {
        let (def, pol, designer, _) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        let empty = Directory::new();
        assert!(matches!(verify_document(&doc, &empty), Err(WfError::UnknownIdentity(_))));
    }

    // CER-level verification is exercised end-to-end in the aea/tfc module
    // tests and in the integration suite.
}
