//! Full-document verification — what every AEA performs first on receiving
//! a DRA4WfMS document ("parses X and verifies all the embedded digital
//! signatures therein so as to ensure that the workflow definition is legal
//! and all the stored execution results of previously executed activities
//! are valid", §2.1), and what a portal server performs before storing a
//! document into the pool.

use crate::document::{CerKey, CerView, DraDocument, PredRef};
use crate::error::{WfError, WfResult};
use crate::identity::Directory;
use crate::model::WorkflowDefinition;
use crate::sealed::{prefix_digest, TrustMark};
use dra_xml::canon::canonicalize_all;
use std::collections::HashMap;

use dra_xml::Element;

/// Outcome of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// The document's unique process id.
    pub process_id: String,
    /// Executed activity iterations, in document order.
    pub cers: Vec<crate::document::CerKey>,
    /// Total signatures checked (designer + participants + TFC) — the
    /// "number of signatures to verify" column of Tables 1 and 2.
    pub signatures_verified: usize,
    /// True when the last CER is an intermediate (TFC-bound) one.
    pub ends_with_intermediate: bool,
}

/// The canonical bytes the TFC's attestation signature covers:
/// `[Header, TfcSealed, participant signature, Result, Timestamp]`.
pub fn tfc_attest_bytes(header: &Element, cer: &CerView<'_>) -> WfResult<Vec<u8>> {
    let sealed = cer
        .tfc_sealed()
        .ok_or_else(|| WfError::Malformed(format!("CER {} lacks TfcSealed", cer.key)))?;
    let psig = cer.participant_signature()?;
    let result =
        cer.result().ok_or_else(|| WfError::Malformed(format!("CER {} lacks Result", cer.key)))?;
    let ts = cer
        .timestamp()
        .ok_or_else(|| WfError::Malformed(format!("CER {} lacks Timestamp", cer.key)))?;
    Ok(canonicalize_all([header, sealed, psig, result, ts]))
}

/// One planned signature check: verify `signature` over `bytes` under
/// `signer`. Tasks are independent once planned, which is what makes them
/// both parallelizable and batch-schedulable (see [`Verifier::batched`]).
struct SigTask {
    label: String,
    signer: dra_crypto::ed25519::PublicKey,
    bytes: Vec<u8>,
    signature: dra_crypto::ed25519::Signature,
}

impl SigTask {
    fn run(&self) -> WfResult<()> {
        if self.signer.verify(&self.bytes, &self.signature) {
            Ok(())
        } else {
            Err(WfError::Verify(format!("{} signature invalid", self.label)))
        }
    }
}

/// How much of the document still needs cryptographic checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VerifyScope {
    /// Check everything: designer signature plus every CER.
    Full,
    /// The first `n` CERs (and the designer signature) are pinned by a
    /// byte-identical verified prefix; emit signature checks only for CERs
    /// appended after them. Structural checks and amendment folding still
    /// run over the whole document — they are cheap and the folded
    /// definition is needed to judge the new CERs.
    TrustedPrefix(usize),
}

/// Sequential structural pass: check participants and document structure,
/// fold amendments, and emit one [`SigTask`] per embedded signature inside
/// `scope`.
fn plan_verification(
    doc: &DraDocument,
    directory: &Directory,
    def: &WorkflowDefinition,
    scope: VerifyScope,
) -> WfResult<(Vec<SigTask>, VerificationReport)> {
    use dra_xml::sig::parse_signature;

    let skip_cers = match scope {
        VerifyScope::Full => 0,
        VerifyScope::TrustedPrefix(n) => n,
    };
    let mut tasks = Vec::new();

    // (2) designer signature — pinned by the prefix digest when trusted
    if scope == VerifyScope::Full {
        let designer = directory.get(&def.designer)?;
        let block = parse_signature(doc.designer_signature()?)
            .map_err(|e| WfError::Verify(format!("designer signature: {e}")))?;
        if block.signer != designer.sign {
            return Err(WfError::Verify("designer signature: unexpected signer".into()));
        }
        if block.covers != "Def" {
            return Err(WfError::Verify(format!(
                "designer signature: covers label '{}' is not 'Def'",
                block.covers
            )));
        }
        tasks.push(SigTask {
            label: "designer".into(),
            signer: block.signer,
            bytes: doc.definition_bytes()?,
            signature: block.signature,
        });
    }

    // the effective definition/policy, updated as amendments are planned
    let mut eff_def = def.clone();
    let mut eff_pol = doc.security_policy()?;

    let cers = doc.cers()?;
    // Pred lookup map, built once: resolving predecessors through
    // `DraDocument::find_cer` re-scans every CER per lookup, which turns
    // planning into an O(n²) pass on long cascades. First match wins, as
    // in document-order search.
    let mut by_key: HashMap<&CerKey, &CerView<'_>> = HashMap::with_capacity(cers.len());
    for cer in &cers {
        by_key.entry(&cer.key).or_insert(cer);
    }
    let mut ends_with_intermediate = false;
    let header = doc.header()?;
    for (idx, cer) in cers.iter().enumerate() {
        let trusted = idx < skip_cers;
        // (3) participant assignment — amendments are executed by the
        // workflow designer; regular activities by their assigned
        // participant under the definition in force at that point
        let expected = if crate::amendment::is_amendment_key(&cer.key) {
            eff_def.designer.clone()
        } else {
            eff_def.activity(&cer.key.activity)?.participant.clone()
        };
        if expected != cer.participant {
            return Err(WfError::Verify(format!(
                "CER {}: executed by '{}' but definition assigns '{}'",
                cer.key, cer.participant, expected
            )));
        }
        // multi-instance cardinality bound: an acyclic activity with a
        // static instance count of k can never legitimately reach iter k —
        // extra CERs beyond it are forged instances
        if !crate::amendment::is_amendment_key(&cer.key) {
            if let Some(crate::model::Cardinality::Static(k)) =
                eff_def.multi_for(&cer.key.activity).map(|m| &m.cardinality)
            {
                if cer.key.iter >= *k && !eff_def.on_cycle(&cer.key.activity) {
                    return Err(WfError::Verify(format!(
                        "CER {}: multi-instance activity '{}' admits only {k} instances",
                        cer.key, cer.key.activity
                    )));
                }
            }
        }

        let sealed = cer.tfc_sealed();
        let result = cer.result();
        let body = sealed.or(result).ok_or_else(|| {
            WfError::Malformed(format!("CER {} has neither Result nor TfcSealed", cer.key))
        })?;
        if !trusted {
            let pid = directory.get(&cer.participant)?;
            let block = parse_signature(cer.participant_signature()?)
                .map_err(|e| WfError::Verify(format!("CER {}: {e}", cer.key)))?;
            if block.signer != pid.sign {
                return Err(WfError::Verify(format!(
                    "CER {} participant signature: unexpected signer",
                    cer.key
                )));
            }
            // pin the covers label to the CER key: the label itself is not
            // under the signature, so without this check those attribute
            // bytes would be malleable in stored documents
            if block.covers != format!("{}", cer.key) {
                return Err(WfError::Verify(format!(
                    "CER {} participant signature: covers label '{}' does not match the CER key",
                    cer.key, block.covers
                )));
            }
            // cascade bytes with preds resolved through the map — same
            // parts as `DraDocument::cascade_bytes`
            let mut parts: Vec<&Element> = vec![header, body];
            for p in &cer.preds {
                match p {
                    PredRef::Def => parts.push(doc.designer_signature()?),
                    PredRef::Cer(k) => {
                        let pred = by_key
                            .get(k)
                            .ok_or_else(|| WfError::Malformed(format!("pred CER {k} not found")))?;
                        let sigs = pred.signatures();
                        if sigs.is_empty() {
                            return Err(WfError::Malformed(format!("pred CER {k} unsigned")));
                        }
                        parts.extend(sigs);
                    }
                }
            }
            tasks.push(SigTask {
                label: format!("CER {} participant", cer.key),
                signer: block.signer,
                bytes: canonicalize_all(parts),
                signature: block.signature,
            });
        }

        // fold verified amendments into the effective definition
        if crate::amendment::is_amendment_key(&cer.key) {
            let result_el = result
                .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Result", cer.key)))?;
            let delta_el = result_el
                .find_child("Delta")
                .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Delta", cer.key)))?;
            let delta = crate::amendment::DefinitionDelta::from_xml(delta_el)?;
            let (d, p) = delta.apply(&eff_def, &eff_pol)?;
            eff_def = d;
            eff_pol = p;
        }

        let is_intermediate = sealed.is_some() && result.is_none();
        if is_intermediate {
            if idx + 1 != cers.len() {
                return Err(WfError::Malformed(format!(
                    "intermediate CER {} is not the last CER",
                    cer.key
                )));
            }
            ends_with_intermediate = true;
        } else if sealed.is_some() && !trusted {
            // advanced-model final CER: TFC attestation required
            let tfc_name = def.tfc.as_deref().ok_or_else(|| {
                WfError::Verify(format!(
                    "CER {} carries TFC data but definition names no TFC",
                    cer.key
                ))
            })?;
            let tfc_id = directory.get(tfc_name)?;
            let tfc_sig = cer
                .tfc_signature()
                .ok_or_else(|| WfError::Verify(format!("CER {} missing TFC signature", cer.key)))?;
            let block = parse_signature(tfc_sig)
                .map_err(|e| WfError::Verify(format!("CER {} TFC: {e}", cer.key)))?;
            if block.signer != tfc_id.sign {
                return Err(WfError::Verify(format!(
                    "CER {} TFC signature: unexpected signer",
                    cer.key
                )));
            }
            if block.covers != format!("tfc:{}", cer.key) {
                return Err(WfError::Verify(format!(
                    "CER {} TFC signature: covers label '{}' does not match the CER key",
                    cer.key, block.covers
                )));
            }
            tasks.push(SigTask {
                label: format!("CER {} TFC", cer.key),
                signer: block.signer,
                bytes: tfc_attest_bytes(header, cer)?,
                signature: block.signature,
            });
        }
    }

    let report = VerificationReport {
        process_id: doc.process_id()?,
        cers: cers.iter().map(|c| c.key.clone()).collect(),
        signatures_verified: tasks.len(),
        ends_with_intermediate,
    };
    Ok((tasks, report))
}

/// Unified verification entry point — a builder covering full, incremental
/// (trust-marked), parallel and batched verification behind one
/// configuration surface.
///
/// ```
/// # use dra4wfms_core::prelude::*;
/// # use dra4wfms_core::verify::Verifier;
/// # let designer = Credentials::from_seed("designer", "d");
/// # let def = WorkflowDefinition::builder("w", "designer")
/// #     .simple_activity("A", "designer", &["x"]).flow_end("A").build().unwrap();
/// # let directory = Directory::from_credentials([&designer]);
/// # let doc = DraDocument::new_initial(&def, &SecurityPolicy::public(), &designer).unwrap();
/// let outcome = Verifier::new(&directory).threads(1).batched(true).run(&doc)?;
/// assert_eq!(outcome.report.signatures_verified, 1);
/// # Ok::<(), dra4wfms_core::error::WfError>(())
/// ```
///
/// The checks performed are unchanged:
/// 1. the embedded workflow definition is structurally valid;
/// 2. the designer's signature over `[Header, WorkflowDefinition,
///    SecurityDefinition]` — a forged or altered definition fails here;
/// 3. for every CER: the recorded participant is the one the definition
///    (as amended up to that point) assigns to the activity, its cascade
///    signature verifies under that participant's key, and all referenced
///    predecessors exist;
/// 4. for advanced-model CERs, the TFC's attestation signature.
///
/// An *intermediate* CER (sealed to the TFC, not yet re-encrypted) is only
/// legal as the final CER of an in-flight document.
///
/// Knobs:
/// * [`threads`](Verifier::threads) — worker threads for the signature
///   checks (default 1).
/// * [`batched`](Verifier::batched) — verify signatures with the shared
///   multi-scalar batch equation, falling back to per-signature checks on
///   batch failure so the culprit and error variant match the sequential
///   path exactly (default on).
/// * [`with_def`](Verifier::with_def) — reuse an already parsed/validated
///   definition instead of re-extracting it from the document.
/// * [`with_mark`](Verifier::with_mark) — incremental mode: skip the CERs a
///   [`TrustMark`] pins (when its prefix digest still matches) and issue a
///   fresh mark covering the whole document.
#[derive(Clone, Copy)]
pub struct Verifier<'a> {
    directory: &'a Directory,
    threads: usize,
    batched: bool,
    def: Option<&'a WorkflowDefinition>,
    mark: Option<&'a TrustMark>,
    incremental: bool,
}

/// What a [`Verifier`] run produced.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// The verification report. `signatures_verified` counts only the
    /// checks executed *this pass* (in incremental mode with a matching
    /// mark and k new CERs it is exactly the k participant checks plus any
    /// new TFC attestation).
    pub report: VerificationReport,
    /// A fresh mark pinning the whole document as now verified — issued in
    /// incremental mode ([`Verifier::with_mark`]); hand it to the next hop.
    pub mark: Option<TrustMark>,
    /// CERs skipped because the supplied trust mark's prefix digest matched.
    pub reused_cers: usize,
    /// True when a supplied mark was unusable (wrong process, or digest
    /// mismatch) and a full verification ran instead.
    pub fell_back: bool,
}

impl<'a> Verifier<'a> {
    /// A verifier resolving signers against `directory`: single-threaded,
    /// batched, full (non-incremental) scope.
    pub fn new(directory: &'a Directory) -> Verifier<'a> {
        Verifier { directory, threads: 1, batched: true, def: None, mark: None, incremental: false }
    }

    /// Use up to `n` worker threads for the planned signature checks
    /// (clamped to at least 1; values ≤ 1 mean sequential).
    pub fn threads(mut self, n: usize) -> Verifier<'a> {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable batch verification of the planned signature
    /// checks. Batched and sequential verification always agree on the
    /// verdict: a failing batch falls back to per-signature checks, which
    /// report the same culprit with the same error variant.
    pub fn batched(mut self, on: bool) -> Verifier<'a> {
        self.batched = on;
        self
    }

    /// Supply an already parsed **and validated** workflow definition,
    /// skipping re-extraction from the document.
    pub fn with_def(mut self, def: &'a WorkflowDefinition) -> Verifier<'a> {
        self.def = Some(def);
        self
    }

    /// Incremental mode: prove the prefix a [`TrustMark`] pins is
    /// byte-identical via its canonical digest and re-check only the CERs
    /// appended since; issue a fresh mark for the next hop.
    ///
    /// Accepts `&TrustMark` or `Option<&TrustMark>` (pass a seal's
    /// [`trust()`](crate::sealed::SealedDocument::trust) straight through —
    /// `None` simply means a full pass that still issues a mark).
    ///
    /// Fallback semantics keep security identical to the full pass: if the
    /// mark names a different process, claims more CERs than the document
    /// has, or its digest no longer matches (any tamper — or any
    /// legitimate in-place change, like a TFC finalizing a previously
    /// intermediate CER), the *full* verification runs and its verdict
    /// stands. A tampered prefix therefore still fails loudly, stale mark
    /// or not.
    pub fn with_mark(mut self, mark: impl Into<Option<&'a TrustMark>>) -> Verifier<'a> {
        self.mark = mark.into();
        self.incremental = true;
        self
    }

    /// Verify `doc`, returning the unified outcome.
    pub fn run(&self, doc: &DraDocument) -> WfResult<VerifyOutcome> {
        let owned_def;
        let def = match self.def {
            Some(d) => d,
            None => {
                owned_def = doc.workflow_definition()?;
                owned_def.validate()?;
                &owned_def
            }
        };

        let usable_prefix = match self.mark {
            Some(m) => {
                let total = doc.cers()?.len();
                if m.process_id == doc.process_id()?
                    && m.verified_cers <= total
                    && prefix_digest(doc, m.verified_cers)? == m.prefix_digest
                {
                    Some(m.verified_cers)
                } else {
                    None
                }
            }
            None => None,
        };
        let (scope, fell_back) = match usable_prefix {
            Some(n) => (VerifyScope::TrustedPrefix(n), false),
            None => (VerifyScope::Full, self.mark.is_some()),
        };

        let (tasks, report) = plan_verification(doc, self.directory, def, scope)?;
        run_tasks(&tasks, self.threads, self.batched)?;

        let reused_cers = match scope {
            VerifyScope::TrustedPrefix(n) => n,
            VerifyScope::Full => 0,
        };
        let mark = if self.incremental {
            // Cumulative count carries over only when the mark was used.
            let prior = match (usable_prefix, self.mark) {
                (Some(_), Some(m)) => m.signatures_verified,
                _ => 0,
            };
            Some(trust_mark_for(doc, &report, prior)?)
        } else {
            None
        };
        Ok(VerifyOutcome { report, mark, reused_cers, fell_back })
    }

    /// Verify a batch of independent documents (the portal-server bulk
    /// path), each under this verifier's configuration, with up to
    /// [`threads`](Verifier::threads) documents in flight at once.
    /// Failures are reported per document; workers write disjoint result
    /// slots directly, no locking.
    pub fn run_many(&self, docs: &[DraDocument]) -> Vec<WfResult<VerifyOutcome>> {
        let threads = self.threads.min(docs.len().max(1));
        // Parallelism moves across documents; each one is verified on a
        // single thread.
        let per_doc = Verifier { threads: 1, ..*self };
        if threads <= 1 {
            return docs.iter().map(|d| per_doc.run(d)).collect();
        }
        let chunk = docs.len().div_ceil(threads);
        let mut out: Vec<Option<WfResult<VerifyOutcome>>> = (0..docs.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            for (doc_chunk, slot_chunk) in docs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (doc, slot) in doc_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(per_doc.run(doc));
                    }
                });
            }
        });
        out.into_iter().map(|slot| slot.expect("every slot filled")).collect()
    }
}

/// Issue a [`TrustMark`] pinning the whole current document, given a report
/// from a verification pass that just succeeded on it. `prior_signatures`
/// is the signature-check count already spent on the pinned prefix by
/// earlier passes (0 after a full verification).
pub fn trust_mark_for(
    doc: &DraDocument,
    report: &VerificationReport,
    prior_signatures: usize,
) -> WfResult<TrustMark> {
    Ok(TrustMark {
        process_id: report.process_id.clone(),
        verified_cers: report.cers.len(),
        prefix_digest: prefix_digest(doc, report.cers.len())?,
        signatures_verified: prior_signatures + report.signatures_verified,
    })
}

/// Execute planned signature checks: batched when requested (aggregate
/// batch equation first, per-signature fallback on failure) and across
/// `threads` workers when more than one.
fn run_tasks(tasks: &[SigTask], threads: usize, batched: bool) -> WfResult<()> {
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads <= 1 || tasks.len() <= 1 {
        return run_chunk(tasks, batched);
    }
    // Workers claim contiguous chunks so a batched worker amortizes the
    // shared multi-scalar multiplication over its whole claim; a poison
    // flag stops sibling workers early once any chunk fails.
    let stride = if batched { tasks.len().div_ceil(threads) } else { 1 };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let results: Vec<WfResult<()>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, poisoned) = (&next, &poisoned);
                s.spawn(move || loop {
                    if poisoned.load(std::sync::atomic::Ordering::Relaxed) {
                        return Ok(());
                    }
                    let start = next.fetch_add(stride, std::sync::atomic::Ordering::Relaxed);
                    if start >= tasks.len() {
                        return Ok(());
                    }
                    let chunk = &tasks[start..(start + stride).min(tasks.len())];
                    if let Err(e) = run_chunk(chunk, batched) {
                        poisoned.store(true, std::sync::atomic::Ordering::Relaxed);
                        return Err(e);
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("verifier thread")).collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Verify one contiguous run of tasks. Batched mode checks the aggregate
/// equation over the whole chunk first — one shared multi-scalar
/// multiplication instead of `len` double-scalar ones — and on failure
/// falls back to per-signature checks, so the reported culprit and error
/// variant are identical to the sequential path.
fn run_chunk(tasks: &[SigTask], batched: bool) -> WfResult<()> {
    if batched && tasks.len() >= 2 {
        let entries: Vec<dra_crypto::BatchEntry<'_>> =
            tasks.iter().map(|t| (t.bytes.as_slice(), t.signature, t.signer)).collect();
        if dra_crypto::verify_batch(&entries) {
            return Ok(());
        }
    }
    for t in tasks {
        t.run()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DraDocument;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;

    fn fixture() -> (WorkflowDefinition, SecurityPolicy, Credentials, Directory) {
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "p");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["x"])
            .flow_end("A")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &peter]);
        (def, SecurityPolicy::public(), designer, dir)
    }

    #[test]
    fn initial_document_verifies() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        let report = Verifier::new(&dir).run(&doc).unwrap().report;
        assert_eq!(report.signatures_verified, 1);
        assert!(report.cers.is_empty());
        assert!(!report.ends_with_intermediate);
        assert_eq!(report.process_id, "pid");
    }

    #[test]
    fn altered_definition_detected() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        // Superuser-style tamper: change the assigned participant in the
        // stored document without re-signing.
        let mut tampered = doc.to_xml_string();
        tampered = tampered.replace("participant=\"peter\"", "participant=\"mallory\"");
        let doc2 = DraDocument::parse(&tampered).unwrap();
        // verification must fail — either unknown identity or bad signature
        assert!(Verifier::new(&dir).run(&doc2).is_err());
    }

    #[test]
    fn altered_process_id_detected() {
        let (def, pol, designer, dir) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid-A").unwrap();
        let tampered = doc.to_xml_string().replace("pid-A", "pid-B");
        let doc2 = DraDocument::parse(&tampered).unwrap();
        let err = Verifier::new(&dir).run(&doc2).unwrap_err();
        assert!(matches!(err, WfError::Verify(_)), "replay/renumber attack detected: {err}");
    }

    #[test]
    fn unknown_designer_rejected() {
        let (def, pol, designer, _) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid").unwrap();
        let empty = Directory::new();
        assert!(matches!(Verifier::new(&empty).run(&doc), Err(WfError::UnknownIdentity(_))));
    }

    // CER-level verification is exercised end-to-end in the aea/tfc module
    // tests and in the integration suite.
}
