//! Sealed documents and trust marks — the incremental-verification layer.
//!
//! A [`SealedDocument`] bundles a parsed [`DraDocument`] with its lazily
//! memoized wire serialization and an optional [`TrustMark`] recording how
//! far the document has already been verified. Hand-offs between hops
//! (AEA → portal → AEA, AEA → TFC) move the sealed form, so a hop that
//! already holds the parsed tree never re-serializes + re-parses it, and a
//! verifier presented with a trust mark re-checks only the CERs appended
//! since the mark was issued.
//!
//! The trust transfer is sound because the mark pins a SHA-256 digest of
//! the canonical bytes of the verified prefix — `[Header,
//! ApplicationDefinition, CER₀ … CER₍ₖ₋₁₎]`. A document whose current
//! prefix hashes to the same value is byte-identical (up to canonical
//! form) to the one that passed full verification, so those k CERs'
//! signatures need not be checked again. Any mutation of the prefix — a
//! tampered result, a stripped amendment, a TFC finalization of a
//! previously intermediate CER — changes the digest, and verification
//! falls back to the full pass (and fails loudly if the change was
//! malicious). See [`crate::verify::Verifier::with_mark`].

use crate::document::DraDocument;
use crate::error::WfResult;
use dra_xml::canon::CanonArena;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

thread_local! {
    /// Reusable canonicalization buffer for [`prefix_digest`]. Incremental
    /// verification recomputes the prefix digest on every hop; routing it
    /// through a thread-local arena means the per-hop cost settles at zero
    /// heap allocation once the buffer has grown to the largest prefix seen
    /// on this thread.
    static PREFIX_ARENA: RefCell<CanonArena> = RefCell::new(CanonArena::new());
}

/// Evidence that a prefix of a document has already been fully verified.
///
/// Issued by [`crate::verify::Verifier::with_mark`] (and by the full
/// verifiers via [`crate::verify::trust_mark_for`]); consumed on the next
/// hop to skip re-verification of the pinned prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrustMark {
    /// Process id of the document the mark belongs to.
    pub process_id: String,
    /// Number of CERs covered by [`TrustMark::prefix_digest`].
    pub verified_cers: usize,
    /// SHA-256 over the canonical bytes of
    /// `[Header, ApplicationDefinition, CER₀ … CER₍ₖ₋₁₎]`.
    pub prefix_digest: [u8; 32],
    /// Cumulative signature checks spent establishing this mark (designer +
    /// participants + TFC across all passes).
    pub signatures_verified: usize,
}

/// Compute the canonical prefix digest a [`TrustMark`] pins: the first
/// `cer_count` CERs plus header and application definition.
pub fn prefix_digest(doc: &DraDocument, cer_count: usize) -> WfResult<[u8; 32]> {
    let header = doc.header()?;
    let app = doc.app_definition()?;
    let mut parts: Vec<&dra_xml::Element> = vec![header, app];
    parts.extend(doc.results()?.find_children("CER").take(cer_count));
    Ok(PREFIX_ARENA.with(|arena| dra_crypto::sha256(arena.borrow_mut().canonicalize_all(parts))))
}

/// A parsed document plus its memoized wire form and verification trust.
///
/// Immutable by construction: there is no `&mut` access to the inner
/// document, so the serialized bytes and the trust mark can never go stale.
/// To mutate, call [`SealedDocument::into_document`] (dropping seal and
/// trust) and re-seal afterwards.
#[derive(Clone, Debug)]
pub struct SealedDocument {
    doc: DraDocument,
    /// Memoized wire serialization, shared across clones.
    wire: OnceLock<Arc<String>>,
    trust: Option<TrustMark>,
}

impl SealedDocument {
    /// Seal a document with no prior verification evidence.
    pub fn new(doc: DraDocument) -> SealedDocument {
        SealedDocument { doc, wire: OnceLock::new(), trust: None }
    }

    /// Seal a document together with a [`TrustMark`] covering its prefix.
    pub fn with_trust(doc: DraDocument, trust: TrustMark) -> SealedDocument {
        SealedDocument { doc, wire: OnceLock::new(), trust: Some(trust) }
    }

    /// Parse from the wire form, keeping the received bytes as the seal's
    /// serialization (the bytes that travelled are the bytes we account).
    pub fn from_wire(xml: &str) -> WfResult<SealedDocument> {
        let doc = DraDocument::parse(xml)?;
        let sealed = SealedDocument::new(doc);
        let _ = sealed.wire.set(Arc::new(xml.to_string()));
        Ok(sealed)
    }

    /// The inner document.
    pub fn document(&self) -> &DraDocument {
        &self.doc
    }

    /// The trust mark, when one travels with the document.
    pub fn trust(&self) -> Option<&TrustMark> {
        self.trust.as_ref()
    }

    /// Attach (or replace) the trust mark.
    pub fn set_trust(&mut self, trust: TrustMark) {
        self.trust = Some(trust);
    }

    /// The wire serialization, computed once and shared across clones.
    pub fn wire(&self) -> Arc<String> {
        Arc::clone(self.wire.get_or_init(|| Arc::new(self.doc.to_xml_string())))
    }

    /// Wire size in bytes (the paper's Σ) without re-serializing.
    pub fn size_bytes(&self) -> usize {
        self.wire().len()
    }

    /// The wire serialization as an owned `String` (clones the shared buffer).
    pub fn to_xml_string(&self) -> String {
        self.wire().as_ref().clone()
    }

    /// Unseal for mutation, dropping the memoized bytes and the trust mark.
    pub fn into_document(self) -> DraDocument {
        self.doc
    }
}

impl std::ops::Deref for SealedDocument {
    type Target = DraDocument;
    fn deref(&self) -> &DraDocument {
        &self.doc
    }
}

impl From<DraDocument> for SealedDocument {
    fn from(doc: DraDocument) -> SealedDocument {
        SealedDocument::new(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;

    fn doc() -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["x"])
            .flow_end("A")
            .build()
            .unwrap();
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid")
            .unwrap()
    }

    #[test]
    fn wire_is_memoized_and_shared() {
        let sealed = SealedDocument::new(doc());
        let a = sealed.wire();
        let b = sealed.wire();
        assert!(Arc::ptr_eq(&a, &b), "second call must reuse the buffer");
        let clone = sealed.clone();
        assert!(Arc::ptr_eq(&a, &clone.wire()), "clones share the buffer");
        assert_eq!(sealed.size_bytes(), a.len());
    }

    #[test]
    fn from_wire_keeps_received_bytes() {
        let xml = doc().to_xml_string();
        let sealed = SealedDocument::from_wire(&xml).unwrap();
        assert_eq!(*sealed.wire(), xml);
        assert_eq!(sealed.size_bytes(), xml.len());
        assert_eq!(sealed.process_id().unwrap(), "pid");
    }

    #[test]
    fn prefix_digest_changes_with_content() {
        let d = doc();
        let d0 = prefix_digest(&d, 0).unwrap();
        assert_eq!(d0, prefix_digest(&d, 0).unwrap(), "deterministic");

        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["x", "y"])
            .flow_end("A")
            .build()
            .unwrap();
        let other =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid")
                .unwrap();
        assert_ne!(d0, prefix_digest(&other, 0).unwrap());
    }

    #[test]
    fn deref_exposes_document_api() {
        let sealed = SealedDocument::new(doc());
        assert_eq!(sealed.process_id().unwrap(), "pid");
        assert!(sealed.cers().unwrap().is_empty());
    }
}
