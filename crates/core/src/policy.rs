//! The security policy: who may read each response field.
//!
//! This is the second part of the paper's "Def": "the security policy during
//! the execution of the workflow process, which includes how to encrypt the
//! data in the workflow process instance" (§2). Different portions of the
//! process instance are encrypted with different keys — element-wise
//! encryption — because each field may have a different audience.
//!
//! Conditional rules reproduce the Fig. 4 scenario: variable `Y` must be
//! encrypted for John when `Func(X)` is true and for Mary otherwise, while
//! the forwarding participant must not see `X` at all. Resolving such a rule
//! requires reading the condition field, which is exactly why the advanced
//! operational model routes documents through the TFC server.

use crate::error::{WfError, WfResult};
use crate::model::{condition_from_xml, condition_to_xml, Condition, FieldRef, WorkflowDefinition};
use dra_xml::Element;
use std::collections::BTreeSet;

/// The audience of one field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Readers {
    /// Stored in plaintext; every document holder can read it.
    Everyone,
    /// Element-wise encrypted to exactly these participants (the producing
    /// participant is always added implicitly).
    Only(Vec<String>),
    /// Audience depends on a condition over another field (Fig. 4).
    Conditional {
        /// The predicate (e.g. `Func(X)`).
        condition: Condition,
        /// Readers when the condition holds.
        then_readers: Vec<String>,
        /// Readers when it does not.
        else_readers: Vec<String>,
    },
}

/// One rule binding a field to its audience.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldRule {
    /// The producing activity.
    pub activity: String,
    /// The field name.
    pub field: String,
    /// The audience.
    pub readers: Readers,
}

/// The complete security definition of a workflow process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecurityPolicy {
    /// Explicit per-field rules.
    pub rules: Vec<FieldRule>,
    /// Audience of fields without an explicit rule.
    pub default_readers: Readers,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy { rules: Vec::new(), default_readers: Readers::Everyone }
    }
}

impl SecurityPolicy {
    /// A policy where everything is public (useful for tests and for
    /// workflows without confidentiality needs).
    pub fn public() -> SecurityPolicy {
        SecurityPolicy::default()
    }

    /// Start building a policy.
    pub fn builder() -> PolicyBuilder {
        PolicyBuilder { policy: SecurityPolicy::default() }
    }

    /// The audience rule for a field.
    pub fn readers_for(&self, activity: &str, field: &str) -> &Readers {
        self.rules
            .iter()
            .find(|r| r.activity == activity && r.field == field)
            .map(|r| &r.readers)
            .unwrap_or(&self.default_readers)
    }

    /// Fields whose audience is conditional (these force TFC routing in a
    /// correct deployment).
    pub fn conditional_fields(&self) -> Vec<FieldRef> {
        self.rules
            .iter()
            .filter(|r| matches!(r.readers, Readers::Conditional { .. }))
            .map(|r| FieldRef::new(r.activity.clone(), r.field.clone()))
            .collect()
    }

    /// Fields referenced by conditional-rule predicates.
    pub fn condition_fields(&self) -> BTreeSet<FieldRef> {
        self.rules
            .iter()
            .filter_map(|r| match &r.readers {
                Readers::Conditional { condition, .. } => {
                    Some(FieldRef::new(condition.activity.clone(), condition.field.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Grant the TFC server read access to every field consulted during
    /// routing or policy resolution: fields referenced by transition
    /// conditions of `def` and by conditional audience rules. Without this,
    /// a stateless notary could not evaluate `Func(X)` at OR-splits — the
    /// flow-concealment problem of Fig. 4.
    pub fn with_tfc_access(mut self, tfc: &str, def: &WorkflowDefinition) -> SecurityPolicy {
        let mut needed: BTreeSet<FieldRef> = def.condition_fields();
        needed.extend(self.condition_fields());
        for fr in needed {
            // find or create the rule and add tfc to its reader lists
            let rule =
                self.rules.iter_mut().find(|r| r.activity == fr.activity && r.field == fr.field);
            match rule {
                Some(r) => add_reader(&mut r.readers, tfc),
                None => {
                    // Field defaults: if default is Everyone nothing to do;
                    // otherwise materialize a rule extending the default.
                    if !matches!(self.default_readers, Readers::Everyone) {
                        let mut readers = self.default_readers.clone();
                        add_reader(&mut readers, tfc);
                        self.rules.push(FieldRule {
                            activity: fr.activity,
                            field: fr.field,
                            readers,
                        });
                    }
                }
            }
        }
        self
    }

    // -- XML serialization ---------------------------------------------------

    /// Serialize to the `<SecurityDefinition>` element embedded in documents.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("SecurityDefinition");
        root.push_child(readers_to_xml("DefaultReaders", &self.default_readers));
        for r in &self.rules {
            let mut el = Element::new("FieldRule")
                .attr("activity", r.activity.clone())
                .attr("field", r.field.clone());
            el.push_child(readers_to_xml("Readers", &r.readers));
            root.push_child(el);
        }
        root
    }

    /// Parse back from XML.
    pub fn from_xml(el: &Element) -> WfResult<SecurityPolicy> {
        if el.name != "SecurityDefinition" {
            return Err(WfError::Malformed(format!(
                "expected <SecurityDefinition>, found <{}>",
                el.name
            )));
        }
        let default_readers = match el.find_child("DefaultReaders") {
            Some(d) => readers_from_xml(d)?,
            None => Readers::Everyone,
        };
        let mut rules = Vec::new();
        for r in el.find_children("FieldRule") {
            let readers_el = r
                .find_child("Readers")
                .ok_or_else(|| WfError::Malformed("FieldRule missing Readers".into()))?;
            rules.push(FieldRule {
                activity: r.get_attr("activity").unwrap_or_default().to_string(),
                field: r.get_attr("field").unwrap_or_default().to_string(),
                readers: readers_from_xml(readers_el)?,
            });
        }
        Ok(SecurityPolicy { rules, default_readers })
    }
}

fn add_reader(readers: &mut Readers, who: &str) {
    match readers {
        Readers::Everyone => {}
        Readers::Only(list) => {
            if !list.iter().any(|r| r == who) {
                list.push(who.to_string());
            }
        }
        Readers::Conditional { then_readers, else_readers, .. } => {
            if !then_readers.iter().any(|r| r == who) {
                then_readers.push(who.to_string());
            }
            if !else_readers.iter().any(|r| r == who) {
                else_readers.push(who.to_string());
            }
        }
    }
}

fn readers_to_xml(tag: &str, readers: &Readers) -> Element {
    match readers {
        Readers::Everyone => Element::new(tag).attr("kind", "everyone"),
        Readers::Only(list) => {
            let mut el = Element::new(tag).attr("kind", "only");
            for r in list {
                el.push_child(Element::new("Reader").attr("name", r.clone()));
            }
            el
        }
        Readers::Conditional { condition, then_readers, else_readers } => {
            let mut el = Element::new(tag).attr("kind", "conditional");
            el.push_child(condition_to_xml(condition));
            let mut then_el = Element::new("Then");
            for r in then_readers {
                then_el.push_child(Element::new("Reader").attr("name", r.clone()));
            }
            let mut else_el = Element::new("Else");
            for r in else_readers {
                else_el.push_child(Element::new("Reader").attr("name", r.clone()));
            }
            el.push_child(then_el);
            el.push_child(else_el);
            el
        }
    }
}

fn reader_names(el: &Element) -> Vec<String> {
    el.find_children("Reader").filter_map(|r| r.get_attr("name")).map(str::to_string).collect()
}

fn readers_from_xml(el: &Element) -> WfResult<Readers> {
    match el.get_attr("kind") {
        Some("everyone") => Ok(Readers::Everyone),
        Some("only") => Ok(Readers::Only(reader_names(el))),
        Some("conditional") => {
            let c = el.find_child("Condition").ok_or_else(|| {
                WfError::Malformed("conditional Readers missing Condition".into())
            })?;
            let then_el = el
                .find_child("Then")
                .ok_or_else(|| WfError::Malformed("conditional Readers missing Then".into()))?;
            let else_el = el
                .find_child("Else")
                .ok_or_else(|| WfError::Malformed("conditional Readers missing Else".into()))?;
            Ok(Readers::Conditional {
                condition: condition_from_xml(c)?,
                then_readers: reader_names(then_el),
                else_readers: reader_names(else_el),
            })
        }
        other => Err(WfError::Malformed(format!("bad Readers kind {other:?}"))),
    }
}

/// Public wrapper over the readers serializer (used by dynamic
/// amendments, which embed policy rules in their deltas).
pub fn readers_to_xml_pub(tag: &str, readers: &Readers) -> Element {
    readers_to_xml(tag, readers)
}

/// Public wrapper over the readers parser.
pub fn readers_from_xml_pub(el: &Element) -> WfResult<Readers> {
    readers_from_xml(el)
}

/// Fluent builder for security policies.
pub struct PolicyBuilder {
    policy: SecurityPolicy,
}

impl PolicyBuilder {
    /// Restrict a field to named readers.
    pub fn restrict(
        mut self,
        activity: impl Into<String>,
        field: impl Into<String>,
        readers: &[&str],
    ) -> Self {
        self.policy.rules.push(FieldRule {
            activity: activity.into(),
            field: field.into(),
            readers: Readers::Only(readers.iter().map(|s| s.to_string()).collect()),
        });
        self
    }

    /// Conditionally routed audience (the Fig. 4 construct).
    pub fn restrict_conditional(
        mut self,
        activity: impl Into<String>,
        field: impl Into<String>,
        condition: Condition,
        then_readers: &[&str],
        else_readers: &[&str],
    ) -> Self {
        self.policy.rules.push(FieldRule {
            activity: activity.into(),
            field: field.into(),
            readers: Readers::Conditional {
                condition,
                then_readers: then_readers.iter().map(|s| s.to_string()).collect(),
                else_readers: else_readers.iter().map(|s| s.to_string()).collect(),
            },
        });
        self
    }

    /// Set the default audience for unruled fields.
    pub fn default_readers(mut self, readers: Readers) -> Self {
        self.policy.default_readers = readers;
        self
    }

    /// Finish.
    pub fn build(self) -> SecurityPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkflowDefinition;

    fn fig4_policy() -> SecurityPolicy {
        SecurityPolicy::builder()
            .restrict("A1", "X", &["amy"])
            .restrict_conditional(
                "A2",
                "Y",
                Condition::field_equals("A1", "X", "true"),
                &["john"],
                &["mary"],
            )
            .build()
    }

    #[test]
    fn readers_lookup() {
        let p = fig4_policy();
        assert_eq!(p.readers_for("A1", "X"), &Readers::Only(vec!["amy".into()]));
        assert_eq!(p.readers_for("A9", "unruled"), &Readers::Everyone);
    }

    #[test]
    fn conditional_fields_listed() {
        let p = fig4_policy();
        let cf = p.conditional_fields();
        assert_eq!(cf, vec![FieldRef::new("A2", "Y")]);
        let deps = p.condition_fields();
        assert!(deps.contains(&FieldRef::new("A1", "X")));
    }

    #[test]
    fn xml_roundtrip() {
        let p = fig4_policy();
        let el = p.to_xml();
        let parsed = SecurityPolicy::from_xml(&el).unwrap();
        assert_eq!(parsed, p);
        let wire = dra_xml::writer::to_string(&el);
        let reparsed = SecurityPolicy::from_xml(&dra_xml::parse(&wire).unwrap()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn xml_roundtrip_default_only() {
        let p =
            SecurityPolicy::builder().default_readers(Readers::Only(vec!["boss".into()])).build();
        let parsed = SecurityPolicy::from_xml(&p.to_xml()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn malformed_rejected() {
        assert!(SecurityPolicy::from_xml(&Element::new("Wrong")).is_err());
        let bad_kind = Element::new("SecurityDefinition")
            .child(Element::new("DefaultReaders").attr("kind", "martian"));
        assert!(SecurityPolicy::from_xml(&bad_kind).is_err());
    }

    #[test]
    fn tfc_access_added_to_condition_fields() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A1", "peter", &["X"])
            .simple_activity("A2", "tony", &["Y"])
            .simple_activity("A4", "john", &[])
            .simple_activity("A5", "mary", &[])
            .flow("A1", "A2")
            .flow_if("A2", "A4", Condition::field_equals("A1", "X", "true"))
            .flow_if("A2", "A5", Condition::field_not_equals("A1", "X", "true"))
            .flow_end("A4")
            .flow_end("A5")
            .with_tfc("TFC")
            .build()
            .unwrap();
        let p = fig4_policy().with_tfc_access("TFC", &def);
        // A1.X is both a transition condition field and a policy condition
        // field; TFC must now be in its audience.
        match p.readers_for("A1", "X") {
            Readers::Only(list) => {
                assert!(list.contains(&"amy".to_string()));
                assert!(list.contains(&"TFC".to_string()));
            }
            other => panic!("unexpected readers {other:?}"),
        }
        // idempotent
        let p2 = p.clone().with_tfc_access("TFC", &def);
        assert_eq!(p2, p);
    }

    #[test]
    fn tfc_access_leaves_public_fields_public() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "1"))
            .flow_end("A")
            .flow_end("B")
            .build()
            .unwrap();
        let p = SecurityPolicy::public().with_tfc_access("TFC", &def);
        assert_eq!(p.readers_for("A", "x"), &Readers::Everyone);
    }
}
