//! The Timestamp & Flow Control (TFC) server of the advanced operational
//! model (§2.2).
//!
//! "The DRA4WfMS document processed by an AEA is first sent to a timestamp
//! and flow control server (TFC server), which is analogous to a notary
//! public and has legal authority to witness the finish time of the
//! activity. Note that a TFC server is **not** a workflow engine as it only
//! embeds timestamps to DRA4WfMS documents and helps with their forwarding."
//!
//! On receiving an intermediate document the TFC: verifies every signature,
//! unseals the fresh result (`{{R}}Pub(TFC)`), re-encrypts it element-wise
//! per the security policy — resolving conditional audiences and evaluating
//! OR-split guards the participant was not allowed to see (the Fig. 4
//! problem) — embeds a timestamp, signs its attestation, and routes the
//! final document.
//!
//! The API mirrors the Table 2 measurement boundaries:
//! [`TfcServer::receive`] is the TFC's share of the α column and
//! [`TfcServer::finalize`] is the γ column.

use crate::document::{CerKey, DraDocument};
use crate::error::{WfError, WfResult};
use crate::faultpoint::{site, CrashHook};
use crate::fields::{build_result_element, plain_fields};
use crate::flow::{evaluate_route_after, DocFieldReader, Route};
use crate::identity::{Credentials, Directory};
use crate::ingest::Inbound;
use crate::model::WorkflowDefinition;
use crate::policy::SecurityPolicy;
use crate::sealed::{prefix_digest, SealedDocument, TrustMark};
use crate::verify::{tfc_attest_bytes, Verifier};
use dra_obs::{stage, Tracer};
use dra_xml::sig::sign_detached;
use dra_xml::Element;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Clock abstraction so tests and benches can pin timestamps.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// One redo-log entry, keyed by the digest of the intermediate document
/// being finalized. The timestamp intent is logged *before* the finalize
/// work; the finished wire is recorded after. A TFC that crashes in between
/// re-finalizes with the logged timestamp instead of drawing a fresh one —
/// no double-timestamp, byte-identical output.
struct RedoEntry {
    timestamp: u64,
    finalized: Option<(String, Route)>,
}

/// A TFC server instance.
pub struct TfcServer {
    /// The TFC's key material.
    pub creds: Credentials,
    /// The deployment PKI.
    pub directory: Directory,
    clock: Clock,
    /// Crash-fault injection seam; `None` outside fault experiments.
    crash_hook: Option<CrashHook>,
    /// Redo log: stable storage next to the TFC's keys. A production
    /// deployment would truncate it at checkpoints; entries here are bounded
    /// by the documents finalized over the server's lifetime.
    redo: Mutex<HashMap<[u8; 32], RedoEntry>>,
    redo_reuses: AtomicU64,
    /// Span recorder; disabled (free) unless [`TfcServer::with_tracer`] is
    /// used.
    tracer: Tracer,
}

/// A verified, unsealed intermediate document awaiting finalization.
#[derive(Debug)]
pub struct TfcReceived {
    /// The intermediate document.
    pub doc: DraDocument,
    /// Parsed definition.
    pub def: WorkflowDefinition,
    /// Parsed policy.
    pub policy: SecurityPolicy,
    /// The intermediate CER being finalized.
    pub key: CerKey,
    /// Its executing participant.
    pub participant: String,
    /// The unsealed plaintext responses.
    pub responses: Vec<(String, String)>,
    /// Report of the verification pass that admitted this document
    /// (`signatures_verified` counts only the checks spent this pass).
    pub report: crate::verify::VerificationReport,
    /// Trust mark covering every CER *before* the intermediate one.
    /// Finalization mutates the intermediate CER in place, so the onward
    /// mark must stop just short of it — the next hop then re-checks
    /// exactly the finalized CER (participant signature + attestation).
    pub trust: TrustMark,
}

/// A finalized document ready to forward.
#[derive(Debug)]
pub struct TfcProcessed {
    /// The final document `X''_Ai(k)`, sealed with a trust mark covering
    /// everything but the CER the TFC just finalized.
    pub document: SealedDocument,
    /// Routing decided by the TFC.
    pub route: Route,
    /// The finalized CER.
    pub key: CerKey,
    /// The embedded timestamp (ms).
    pub timestamp: u64,
}

impl TfcServer {
    /// Create a TFC server with the system clock.
    pub fn new(creds: Credentials, directory: Directory) -> TfcServer {
        Self::with_clock(
            creds,
            directory,
            Arc::new(|| {
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0)
            }),
        )
    }

    /// Create a TFC server with an injected clock (tests, reproducibility).
    pub fn with_clock(creds: Credentials, directory: Directory, clock: Clock) -> TfcServer {
        TfcServer {
            creds,
            directory,
            clock,
            crash_hook: None,
            redo: Mutex::new(HashMap::new()),
            redo_reuses: AtomicU64::new(0),
            tracer: Tracer::disabled(),
        }
    }

    /// Arm this TFC with a crash-injection hook (see [`crate::faultpoint`]).
    pub fn with_crash_hook(mut self, hook: CrashHook) -> TfcServer {
        self.crash_hook = Some(hook);
        self
    }

    /// Record `verify` / `tfc:timestamp` / `tfc:reencrypt` spans into
    /// `tracer`. Every [`TfcServer::finalize`] path — fresh draw, logged
    /// intent, fully-finalized replay — emits a `tfc:timestamp` span, so a
    /// recovered run still witnesses its timestamps in the trace.
    pub fn with_tracer(mut self, tracer: Tracer) -> TfcServer {
        self.tracer = tracer;
        self
    }

    fn crash_point(&self, site: &str) -> WfResult<()> {
        match &self.crash_hook {
            Some(hook) => hook(site),
            None => Ok(()),
        }
    }

    /// How many finalizations were answered (fully or partially) from the
    /// redo log — i.e. re-executions after a crash, each of which would have
    /// drawn a second timestamp without the log.
    pub fn redo_reuses(&self) -> u64 {
        self.redo_reuses.load(Ordering::Relaxed)
    }

    /// Verify an incoming intermediate document and unseal its fresh result
    /// (the TFC's α phase in Table 2) — the single ingest entry point.
    ///
    /// Accepts anything convertible to [`Inbound`]: wire XML, a parsed
    /// [`DraDocument`], or a [`SealedDocument`] straight from the executing
    /// AEA. A carried [`TrustMark`] reduces verification to the intermediate
    /// CER just appended; every other form takes the full pass.
    pub fn receive(&self, inbound: impl Into<Inbound>) -> WfResult<TfcReceived> {
        let mut span_verify = self.tracer.span(stage::VERIFY).actor(&self.creds.name);
        let sealed = inbound.into().into_sealed()?;
        let tfc_name = {
            let base_def = sealed.workflow_definition()?;
            base_def.tfc.ok_or_else(|| WfError::Policy("definition names no TFC server".into()))?
        };
        if tfc_name != self.creds.name {
            return Err(WfError::NotParticipant {
                expected: tfc_name,
                actual: self.creds.name.clone(),
            });
        }
        let outcome = Verifier::new(&self.directory).with_mark(sealed.trust()).run(&sealed)?;
        let report = outcome.report;
        if !report.ends_with_intermediate {
            return Err(WfError::Malformed(
                "document does not end with an intermediate (TFC-bound) CER".into(),
            ));
        }
        let doc = sealed.into_document();
        // The onward mark stops short of the intermediate CER, which
        // finalization is about to mutate in place.
        let fresh = outcome.mark.expect("incremental mode issues a mark");
        let trust = TrustMark {
            process_id: report.process_id.clone(),
            verified_cers: report.cers.len() - 1,
            prefix_digest: prefix_digest(&doc, report.cers.len() - 1)?,
            signatures_verified: fresh.signatures_verified,
        };

        let (key, participant, sealed_hex) = {
            let cers = doc.cers()?;
            let last = cers.last().expect("ends_with_intermediate implies a CER");
            let sealed = last
                .tfc_sealed()
                .ok_or_else(|| WfError::Malformed("intermediate CER lacks TfcSealed".into()))?;
            (last.key.clone(), last.participant.clone(), sealed.text_content())
        };
        let sealed_bytes = dra_crypto::b64::decode(&sealed_hex)
            .ok_or_else(|| WfError::Malformed("bad TfcSealed base64".into()))?;
        let plaintext = dra_crypto::sealed::open(&self.creds.enc, &sealed_bytes)
            .map_err(|e| WfError::Crypto(format!("unsealing result: {e}")))?;
        let text = String::from_utf8(plaintext)
            .map_err(|_| WfError::Malformed("sealed result is not UTF-8".into()))?;
        let result_el =
            dra_xml::parse(&text).map_err(|e| WfError::Parse(format!("sealed result: {e}")))?;
        let responses = plain_fields(&result_el);

        // dynamic flow control: route and re-encrypt under the effective
        // definition and policy
        let (def, policy) = crate::amendment::effective_definition(&doc)?;
        span_verify.set_process(&report.process_id);
        span_verify.set_activity(&key.activity, key.iter);
        span_verify.attr("signatures_verified", report.signatures_verified);
        span_verify.end();
        Ok(TfcReceived { doc, def, policy, key, participant, responses, report, trust })
    }

    /// Re-encrypt per policy, embed the timestamp, attest and route (the γ
    /// phase in Table 2).
    ///
    /// Crash-consistent via the redo log: the timestamp intent is logged
    /// before any mutation, the finished wire after. Re-finalizing the same
    /// intermediate document (a recovered hop re-sending after a TFC crash)
    /// reuses the logged timestamp — and, when the first pass got as far as
    /// recording its output, re-emits those exact bytes.
    pub fn finalize(&self, received: &TfcReceived) -> WfResult<TfcProcessed> {
        let redo_key = dra_crypto::sha256(received.doc.to_xml_string().as_bytes());

        // redo fast path: this intermediate document was fully finalized
        // before a crash cut off the forwarding — re-emit identical bytes.
        if let Some((wire, route, timestamp)) = self.redo_finalized(&redo_key) {
            self.redo_reuses.fetch_add(1, Ordering::Relaxed);
            self.span_timestamp(received, timestamp, "finalized");
            let mut document = SealedDocument::from_wire(&wire)?;
            document.set_trust(received.trust.clone());
            return Ok(TfcProcessed { document, route, key: received.key.clone(), timestamp });
        }

        // draw the timestamp — or reuse the intent a crashed finalize
        // already logged for this document, so it is never stamped twice
        let (timestamp, reused) = {
            let mut redo = self.redo.lock().unwrap_or_else(|e| e.into_inner());
            match redo.entry(redo_key) {
                Entry::Occupied(e) => {
                    self.redo_reuses.fetch_add(1, Ordering::Relaxed);
                    (e.get().timestamp, "intent")
                }
                Entry::Vacant(v) => (
                    v.insert(RedoEntry { timestamp: (self.clock)(), finalized: None }).timestamp,
                    "fresh",
                ),
            }
        };
        self.span_timestamp(received, timestamp, reused);
        self.crash_point(site::TFC_AFTER_TIMESTAMP)?;

        let mut span_reenc = self
            .tracer
            .span(stage::TFC_REENCRYPT)
            .actor(&self.creds.name)
            .process(&received.report.process_id)
            .activity(&received.key.activity, received.key.iter);

        let reader = DocFieldReader::for_actor(&received.doc, &self.creds)
            .with_overlay(&received.key.activity, &received.responses);

        // {R_Ai}ee per the security policy — the TFC resolves conditional
        // audiences because it can read the condition fields.
        let result = build_result_element(
            &received.key.activity,
            &received.responses,
            &received.policy,
            &self.directory,
            &received.participant,
            &reader,
        )?;
        let ts_el = Element::new("Timestamp")
            .attr("time", timestamp.to_string())
            .attr("by", self.creds.name.clone());

        let mut document = received.doc.clone();
        {
            let cer_el = document
                .find_cer_element_mut(&received.key)?
                .ok_or_else(|| WfError::Malformed("intermediate CER vanished".into()))?;
            // insert Result and Timestamp before signing the attestation
            cer_el.push_child(result);
            cer_el.push_child(ts_el);
        }
        // sign the attestation over [Header, TfcSealed, participant sig,
        // Result, Timestamp]
        let attest = {
            let cer = document
                .find_cer(&received.key)?
                .ok_or_else(|| WfError::Malformed("CER lookup failed".into()))?;
            tfc_attest_bytes(document.header()?, &cer)?
        };
        let sig = sign_detached(&self.creds.sign, &attest, &format!("tfc:{}", received.key));
        document.find_cer_element_mut(&received.key)?.expect("checked above").push_child(sig);
        span_reenc.attr("fields", received.responses.len());
        span_reenc.end();

        let route = evaluate_route_after(
            &received.def,
            &received.key.activity,
            received.key.iter,
            &reader,
        )?;
        let document = SealedDocument::with_trust(document, received.trust.clone());
        {
            let mut redo = self.redo.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = redo.get_mut(&redo_key) {
                entry.finalized = Some((document.wire().as_ref().clone(), route.clone()));
            }
        }
        Ok(TfcProcessed { document, route, key: received.key.clone(), timestamp })
    }

    /// Witness a timestamp in the trace. Emitted on every finalize path
    /// (`reused` ∈ {"fresh", "intent", "finalized"}) so the reconciliation
    /// oracle can match the document's `Timestamp` element against an
    /// observed draw even after crash recovery.
    fn span_timestamp(&self, received: &TfcReceived, timestamp: u64, reused: &str) {
        let mut span = self
            .tracer
            .span(stage::TFC_TIMESTAMP)
            .actor(&self.creds.name)
            .process(&received.report.process_id)
            .activity(&received.key.activity, received.key.iter);
        span.attr("ts_ms", timestamp);
        span.attr("reused", reused);
        span.end();
    }

    fn redo_finalized(&self, redo_key: &[u8; 32]) -> Option<(String, Route, u64)> {
        let redo = self.redo.lock().unwrap_or_else(|e| e.into_inner());
        let entry = redo.get(redo_key)?;
        let (wire, route) = entry.finalized.as_ref()?;
        Some((wire.clone(), route.clone(), entry.timestamp))
    }

    /// Convenience: receive + finalize in one call. Accepts the same forms
    /// as [`TfcServer::receive`].
    pub fn process(&self, inbound: impl Into<Inbound>) -> WfResult<TfcProcessed> {
        let received = self.receive(inbound)?;
        self.finalize(&received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aea::Aea;
    use crate::model::{Condition, JoinKind};
    use crate::verify::Verifier;

    /// The Fig. 4 workflow: Peter inputs X (readable only by Amy and the
    /// TFC), Tony inputs Y whose audience depends on Func(X), then an
    /// OR-split on Func(X) that Tony cannot evaluate.
    struct Fig4 {
        def: WorkflowDefinition,
        policy: SecurityPolicy,
        designer: Credentials,
        peter: Credentials,
        tony: Credentials,
        dir: Directory,
        tfc: Credentials,
    }

    fn fig4() -> Fig4 {
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "pe");
        let tony = Credentials::from_seed("tony", "to");
        let amy = Credentials::from_seed("amy", "am");
        let john = Credentials::from_seed("john", "jo");
        let mary = Credentials::from_seed("mary", "ma");
        let tfc = Credentials::from_seed("TFC", "tf");
        let def = WorkflowDefinition::builder("fig4", "designer")
            .simple_activity("A1", "peter", &["X"])
            .activity(crate::model::Activity {
                id: "A3".into(),
                participant: "tony".into(),
                join: JoinKind::Any,
                requests: vec![],
                responses: vec!["Y".into()],
            })
            .simple_activity("A4", "john", &["j"])
            .simple_activity("A5", "mary", &["m"])
            .flow("A1", "A3")
            .flow_if("A3", "A4", Condition::field_equals("A1", "X", "true"))
            .flow_if("A3", "A5", Condition::field_not_equals("A1", "X", "true"))
            .flow_end("A4")
            .flow_end("A5")
            .with_tfc("TFC")
            .build()
            .unwrap();
        let policy = SecurityPolicy::builder()
            .restrict("A1", "X", &["amy"])
            .restrict_conditional(
                "A3",
                "Y",
                Condition::field_equals("A1", "X", "true"),
                &["john"],
                &["mary"],
            )
            .build()
            .with_tfc_access("TFC", &def);
        let dir = Directory::from_credentials([&designer, &peter, &tony, &amy, &john, &mary, &tfc]);
        Fig4 { def, policy, designer, peter, tony, dir, tfc }
    }

    fn fixed_clock(t: u64) -> Clock {
        Arc::new(move || t)
    }

    #[test]
    fn advanced_model_resolves_fig4() {
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid").unwrap();
        let tfc = TfcServer::with_clock(f.tfc.clone(), f.dir.clone(), fixed_clock(1000));

        // Peter executes A1 with X = "true", sealed to the TFC.
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "true".into())]).unwrap();
        let done = tfc.process(inter.document.to_xml_string()).unwrap();
        assert_eq!(done.route.targets, vec!["A3"]);
        assert_eq!(done.timestamp, 1000);

        // Tony executes A3. He cannot read X — and does not need to.
        let aea_tony = Aea::new(f.tony.clone(), f.dir.clone());
        let recv = aea_tony.receive(done.document.to_xml_string(), "A3").unwrap();
        let inter =
            aea_tony.complete_via_tfc(&recv, &[("Y".into(), "payload-for-john".into())]).unwrap();
        let done = tfc.process(inter.document.to_xml_string()).unwrap();
        // TFC evaluated Func(X): X == "true" routes to A4 (john).
        assert_eq!(done.route.targets, vec!["A4"]);

        // And Y was encrypted for john (then-branch), not mary.
        let cer = done.document.find_cer(&CerKey::new("A3", 0)).unwrap().unwrap();
        let result = cer.result().unwrap();
        let enc = result
            .child_elements()
            .find(|e| e.get_attr("field") == Some("Y"))
            .expect("Y present encrypted");
        let readers = dra_xml::enc::recipients_of(enc);
        assert!(readers.contains(&"john"));
        assert!(!readers.contains(&"mary"));

        // Full final document verifies (designer + 2 participants + 2 TFC).
        let report = Verifier::new(&f.dir).run(&done.document).unwrap().report;
        assert_eq!(report.signatures_verified, 5);
        assert!(!report.ends_with_intermediate);
    }

    #[test]
    fn else_branch_routes_to_mary() {
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid2").unwrap();
        let tfc = TfcServer::with_clock(f.tfc.clone(), f.dir.clone(), fixed_clock(1));
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "false".into())]).unwrap();
        let done = tfc.process(inter.document.to_xml_string()).unwrap();
        let aea_tony = Aea::new(f.tony.clone(), f.dir.clone());
        let recv = aea_tony.receive(done.document.to_xml_string(), "A3").unwrap();
        let inter = aea_tony.complete_via_tfc(&recv, &[("Y".into(), "v".into())]).unwrap();
        let done = tfc.process(inter.document.to_xml_string()).unwrap();
        assert_eq!(done.route.targets, vec!["A5"]);
        let cer = done.document.find_cer(&CerKey::new("A3", 0)).unwrap().unwrap();
        let enc = cer
            .result()
            .unwrap()
            .child_elements()
            .find(|e| e.get_attr("field") == Some("Y"))
            .unwrap();
        assert!(dra_xml::enc::recipients_of(enc).contains(&"mary"));
    }

    #[test]
    fn basic_model_fails_on_fig4() {
        // The same workflow under the basic model: Tony's AEA must fail,
        // because it can neither resolve Y's audience nor evaluate the split.
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid3").unwrap();
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let done = aea_peter.complete(&recv, &[("X".into(), "true".into())]).unwrap();
        let aea_tony = Aea::new(f.tony.clone(), f.dir.clone());
        let recv = aea_tony.receive(done.document.to_xml_string(), "A3").unwrap();
        let err = aea_tony.complete(&recv, &[("Y".into(), "v".into())]).unwrap_err();
        assert!(
            matches!(err, WfError::FieldNotReadable { ref field, .. } if field == "X"),
            "the Fig. 4 flow-concealment failure: {err}"
        );
    }

    #[test]
    fn tfc_rejects_final_documents() {
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid4").unwrap();
        let tfc = TfcServer::with_clock(f.tfc.clone(), f.dir.clone(), fixed_clock(1));
        assert!(matches!(tfc.receive(initial.to_xml_string()), Err(WfError::Malformed(_))));
    }

    #[test]
    fn wrong_tfc_identity_rejected() {
        let f = fig4();
        let impostor = Credentials::from_seed("OtherTFC", "x");
        let tfc = TfcServer::new(impostor, f.dir.clone());
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid5").unwrap();
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "t".into())]).unwrap();
        assert!(matches!(
            tfc.receive(inter.document.to_xml_string()),
            Err(WfError::NotParticipant { .. })
        ));
    }

    #[test]
    fn intermediate_document_rejected_by_next_aea() {
        // An AEA must refuse a document that still ends with a TFC-bound CER.
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid6").unwrap();
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "t".into())]).unwrap();
        let aea_tony = Aea::new(f.tony.clone(), f.dir.clone());
        let err = aea_tony.receive(inter.document.to_xml_string(), "A3").unwrap_err();
        assert!(matches!(err, WfError::Malformed(_)));
    }

    #[test]
    fn redo_log_survives_crash_between_timestamp_and_reencrypt() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid-redo").unwrap();
        // an advancing clock: a second draw would be observable
        let counter = Arc::new(AtomicU64::new(100));
        let c = Arc::clone(&counter);
        let clock: Clock = Arc::new(move || c.fetch_add(1, Ordering::SeqCst));
        // crash exactly once, between the timestamp draw and the re-encrypt
        let fired = Arc::new(AtomicBool::new(false));
        let fd = Arc::clone(&fired);
        let hook: crate::faultpoint::CrashHook = Arc::new(move |s| {
            if s == site::TFC_AFTER_TIMESTAMP && !fd.swap(true, Ordering::SeqCst) {
                return Err(WfError::Crash(s.to_string()));
            }
            Ok(())
        });
        let tfc = TfcServer::with_clock(f.tfc.clone(), f.dir.clone(), clock).with_crash_hook(hook);
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "true".into())]).unwrap();

        let received = tfc.receive(inter.document.to_xml_string()).unwrap();
        let err = tfc.finalize(&received).unwrap_err();
        assert!(matches!(err, WfError::Crash(_)));

        // recovery: the hop is re-dispatched with the same intermediate doc
        let received = tfc.receive(inter.document.to_xml_string()).unwrap();
        let done = tfc.finalize(&received).unwrap();
        assert_eq!(done.timestamp, 100, "the logged intent, not a second draw");
        assert_eq!(counter.load(Ordering::SeqCst), 101, "clock consulted exactly once");
        assert_eq!(tfc.redo_reuses(), 1);
        Verifier::new(&f.dir).run(&done.document).unwrap();
        // exactly one Timestamp element on the finalized CER
        let wire = done.document.to_xml_string();
        assert_eq!(wire.matches("<Timestamp").count(), 1, "no double-timestamp");

        // a third pass hits the finalized fast path: byte-identical output
        let received = tfc.receive(inter.document.to_xml_string()).unwrap();
        let again = tfc.finalize(&received).unwrap();
        assert_eq!(again.document.wire(), done.document.wire());
        assert_eq!(again.route.targets, done.route.targets);
        assert_eq!(tfc.redo_reuses(), 2);
    }

    #[test]
    fn tampered_timestamp_detected() {
        let f = fig4();
        let initial =
            DraDocument::new_initial_with_pid(&f.def, &f.policy, &f.designer, "pid7").unwrap();
        let tfc = TfcServer::with_clock(f.tfc.clone(), f.dir.clone(), fixed_clock(777));
        let aea_peter = Aea::new(f.peter.clone(), f.dir.clone());
        let recv = aea_peter.receive(initial.to_xml_string(), "A1").unwrap();
        let inter = aea_peter.complete_via_tfc(&recv, &[("X".into(), "t".into())]).unwrap();
        let done = tfc.process(inter.document.to_xml_string()).unwrap();
        let tampered = done.document.to_xml_string().replace("time=\"777\"", "time=\"778\"");
        let doc = DraDocument::parse(&tampered).unwrap();
        assert!(matches!(Verifier::new(&f.dir).run(&doc), Err(WfError::Verify(_))));
    }
}
