//! The Activity Execution Agent (AEA).
//!
//! "A software tool … to activate the execution of activities. First, the
//! AEA parses X_Ai and verifies all the embedded digital signatures … Second,
//! the AEA checks if the participant is the correct executor of this
//! activity. Third, the AEA … shows them to the participant … Fourth, the AEA
//! appends the execution result … Fifth, the AEA embeds a digital signature
//! that signs the execution result and some of the digital signatures
//! embedded in previous activities … Finally, the AEA checks the control
//! flow information … and forwards X''_Ai" (§2.1).
//!
//! The API splits along the paper's measurement boundaries so Tables 1 and 2
//! can be regenerated exactly:
//!
//! * [`Aea::receive`] — parse + verify + decrypt (the α column),
//! * [`Aea::complete`] / [`Aea::complete_via_tfc`] — encrypt + sign
//!   (+ route) (the β column).

use crate::document::{preds_to_attr, CerKey, DraDocument, PredRef};
use crate::error::{WfError, WfResult};
use crate::faultpoint::{site, CrashHook};
use crate::fields::{build_plain_result_element, build_result_element};
use crate::flow::{evaluate_route_after, join_ready, merge_documents, DocFieldReader, Route};
use crate::identity::{Credentials, Directory};
use crate::ingest::Inbound;
use crate::model::{FieldRef, JoinKind, WorkflowDefinition};
use crate::policy::SecurityPolicy;
use crate::sealed::{SealedDocument, TrustMark};
use crate::verify::{VerificationReport, Verifier};
use dra_obs::{stage, Tracer};
use dra_xml::canon::canonicalize;
use dra_xml::sig::sign_detached;
use dra_xml::Element;

/// An Activity Execution Agent bound to one participant's credentials.
pub struct Aea {
    /// The participant's secret key material.
    pub creds: Credentials,
    /// The deployment PKI.
    pub directory: Directory,
    /// Crash-fault injection seam; `None` outside fault experiments.
    crash_hook: Option<CrashHook>,
    /// Span recorder; disabled (free) unless [`Aea::with_tracer`] is used.
    tracer: Tracer,
    /// Batch the signature checks of [`Aea::receive`] (default on); see
    /// [`crate::verify::Verifier::batched`]. Off reproduces the paper's
    /// per-signature baseline for measurements.
    batched: bool,
}

/// The outcome of [`Aea::receive`]: a verified document opened for one
/// activity execution, with the request fields the participant may see.
#[derive(Debug)]
pub struct ReceivedActivity {
    /// The verified document.
    pub doc: DraDocument,
    /// Parsed workflow definition.
    pub def: WorkflowDefinition,
    /// Parsed security policy.
    pub policy: SecurityPolicy,
    /// The activity to execute.
    pub activity: String,
    /// Its iteration number (0-based; >0 inside loops).
    pub iter: u32,
    /// Cascade predecessors the new CER will sign.
    pub preds: Vec<PredRef>,
    /// Request fields decrypted for display to the participant.
    pub visible: Vec<(FieldRef, String)>,
    /// Request fields the participant's keys cannot open.
    pub hidden: Vec<FieldRef>,
    /// The verification report (signature counts etc.).
    pub report: VerificationReport,
    /// Trust mark pinning the document as verified by this receive; it
    /// travels with the completed document so the next hop re-checks only
    /// the CER this activity appends.
    pub trust: TrustMark,
    /// CERs whose signatures were skipped thanks to an incoming trust mark.
    pub reused_cers: usize,
}

/// The outcome of [`Aea::complete`] in the basic model.
#[derive(Debug)]
pub struct CompletedActivity {
    /// The new document `X''_Ai(k)`, sealed with a trust mark covering
    /// everything but the CER just appended.
    pub document: SealedDocument,
    /// Where to forward it.
    pub route: Route,
    /// The CER just appended.
    pub key: CerKey,
}

/// The outcome of [`Aea::complete_via_tfc`]: an intermediate document whose
/// fresh result is sealed to the TFC server.
#[derive(Debug)]
pub struct IntermediateActivity {
    /// The intermediate document `X^~_Ai(k)`, sealed with a trust mark
    /// covering everything but the CER just appended.
    pub document: SealedDocument,
    /// The CER just appended (intermediate form).
    pub key: CerKey,
}

impl Aea {
    /// Create an AEA for a participant.
    pub fn new(creds: Credentials, directory: Directory) -> Aea {
        Aea { creds, directory, crash_hook: None, tracer: Tracer::disabled(), batched: true }
    }

    /// Record `verify` / `decrypt` / `seal` / `sign` spans into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Aea {
        self.tracer = tracer;
        self
    }

    /// Enable or disable batched signature verification on receive
    /// (default on). The verdict is identical either way; off measures the
    /// paper's per-signature baseline.
    pub fn with_batched(mut self, on: bool) -> Aea {
        self.batched = on;
        self
    }

    /// Arm this AEA with a crash-injection hook (see [`crate::faultpoint`]).
    /// The hook is consulted at every named site; when it returns
    /// [`WfError::Crash`], the operation aborts there, losing all in-flight
    /// state, and the caller's recovery machinery takes over.
    pub fn with_crash_hook(mut self, hook: CrashHook) -> Aea {
        self.crash_hook = Some(hook);
        self
    }

    fn crash_point(&self, site: &str) -> WfResult<()> {
        match &self.crash_hook {
            Some(hook) => hook(site),
            None => Ok(()),
        }
    }

    /// Receive a routed document and open `activity` for execution — the
    /// single ingest entry point.
    ///
    /// This is the paper's α phase: parse, verify every embedded signature,
    /// check the executor, decrypt the request fields. Accepts anything
    /// convertible to [`Inbound`] — wire XML (`&str`/`String`), a parsed
    /// [`DraDocument`], or a [`SealedDocument`] hand-off. A sealed document
    /// carrying a [`TrustMark`] is verified incrementally: only the CERs
    /// appended since the mark was issued are re-checked (after proving the
    /// marked prefix byte-identical via its digest). Every other form takes
    /// the full verification pass — there is no way to skip it.
    pub fn receive(
        &self,
        inbound: impl Into<Inbound>,
        activity: &str,
    ) -> WfResult<ReceivedActivity> {
        let mut span_verify = self.tracer.span(stage::VERIFY).actor(&self.creds.name);
        let sealed = inbound.into().into_sealed()?;
        let outcome = Verifier::new(&self.directory)
            .batched(self.batched)
            .with_mark(sealed.trust())
            .run(&sealed)?;
        let report = outcome.report;
        if report.ends_with_intermediate {
            return Err(WfError::Malformed(
                "document ends with a TFC-bound intermediate CER; it must be processed by the TFC first"
                    .into(),
            ));
        }
        let trust = outcome.mark.expect("incremental mode issues a mark");
        let reused_cers = outcome.reused_cers;
        let doc = sealed.into_document();
        // dynamic flow control: fold any (already verified) amendments into
        // the effective definition and policy
        let (def, policy) = crate::amendment::effective_definition(&doc)?;

        let act = def.activity(activity)?.clone();
        if act.participant != self.creds.name {
            return Err(WfError::NotParticipant {
                expected: act.participant,
                actual: self.creds.name.clone(),
            });
        }
        if act.join == JoinKind::All && !join_ready(&doc, &def, activity)? {
            return Err(WfError::Flow(format!(
                "AND-join '{activity}' is not ready: not all incoming branches have arrived"
            )));
        }

        let iter = match doc.latest_iter(activity)? {
            Some(i) => i + 1,
            None => 0,
        };
        span_verify.set_process(&report.process_id);
        span_verify.set_activity(activity, iter);
        span_verify.attr("signatures_verified", report.signatures_verified);
        span_verify.attr("reused_cers", reused_cers);
        span_verify.end();
        let preds = doc.compute_preds(&def, activity)?;

        // decrypt the request fields
        let mut span_decrypt = self
            .tracer
            .span(stage::DECRYPT)
            .actor(&self.creds.name)
            .process(&report.process_id)
            .activity(activity, iter);
        let mut visible = Vec::new();
        let mut hidden = Vec::new();
        {
            let reader = DocFieldReader::for_actor(&doc, &self.creds);
            use crate::fields::FieldReader;
            for req in &act.requests {
                match reader.read_field(&req.activity, &req.field) {
                    Ok(Some(v)) => visible.push((req.clone(), v)),
                    Ok(None) => {} // not produced yet (e.g. first loop pass)
                    Err(WfError::FieldNotReadable { .. }) => hidden.push(req.clone()),
                    Err(e) => return Err(e),
                }
            }
        }

        span_decrypt.attr("visible", visible.len());
        span_decrypt.attr("hidden", hidden.len());
        span_decrypt.end();

        self.crash_point(site::AEA_AFTER_VERIFY)?;
        Ok(ReceivedActivity {
            doc,
            def,
            policy,
            activity: activity.to_string(),
            iter,
            preds,
            visible,
            hidden,
            report,
            trust,
            reused_cers,
        })
    }

    /// AND-join variant: receive one document per incoming branch, merge
    /// their CER sets, then open the join activity.
    pub fn receive_merged(&self, xmls: &[&str], activity: &str) -> WfResult<ReceivedActivity> {
        let docs: Vec<DraDocument> =
            xmls.iter().map(|x| DraDocument::parse(x)).collect::<WfResult<_>>()?;
        let merged = merge_documents(&docs)?;
        self.receive(merged, activity)
    }

    fn check_responses(
        received: &ReceivedActivity,
        responses: &[(String, String)],
    ) -> WfResult<()> {
        let act = received.def.activity(&received.activity)?;
        for (name, _) in responses {
            if !act.responses.contains(name) {
                return Err(WfError::Flow(format!(
                    "activity '{}' does not declare response field '{name}'",
                    received.activity
                )));
            }
        }
        for declared in &act.responses {
            if !responses.iter().any(|(n, _)| n == declared) {
                return Err(WfError::Flow(format!(
                    "response field '{declared}' of activity '{}' not provided",
                    received.activity
                )));
            }
        }
        Ok(())
    }

    /// Complete the activity under the **basic operational model** (§2.1):
    /// element-wise encrypt the responses per the security policy, embed the
    /// cascade signature, and compute the route.
    ///
    /// This is the paper's β phase.
    pub fn complete(
        &self,
        received: &ReceivedActivity,
        responses: &[(String, String)],
    ) -> WfResult<CompletedActivity> {
        Self::check_responses(received, responses)?;
        let reader = DocFieldReader::for_actor(&received.doc, &self.creds)
            .with_overlay(&received.activity, responses);
        let result = build_result_element(
            &received.activity,
            responses,
            &received.policy,
            &self.directory,
            &self.creds.name,
            &reader,
        )?;

        let mut document = received.doc.clone();
        let key = CerKey::new(received.activity.clone(), received.iter);
        let mut span_sign = self
            .tracer
            .span(stage::SIGN)
            .actor(&self.creds.name)
            .process(&received.report.process_id)
            .activity(&received.activity, received.iter);
        let cascade = document.cascade_bytes(&result, &received.preds)?;
        self.crash_point(site::AEA_BEFORE_SIGN)?;
        let sig = sign_detached(&self.creds.sign, &cascade, &format!("{key}"));
        let cer = Element::new("CER")
            .attr("activity", key.activity.clone())
            .attr("iter", key.iter.to_string())
            .attr("participant", self.creds.name.clone())
            .attr("preds", preds_to_attr(&received.preds))
            .child(result)
            .child(sig);
        document.push_cer(cer)?;
        span_sign.attr("model", "basic");
        span_sign.end();

        let route =
            evaluate_route_after(&received.def, &received.activity, received.iter, &reader)?;
        self.crash_point(site::AEA_AFTER_SIGN)?;
        // The prefix pinned at receive time is untouched by push_cer, so the
        // mark stays valid: the next hop re-verifies exactly this new CER.
        let document = SealedDocument::with_trust(document, received.trust.clone());
        Ok(CompletedActivity { document, route, key })
    }

    /// Complete the activity under the **advanced operational model** (§2.2):
    /// seal the plaintext result to the TFC server's public key and embed the
    /// cascade signature over the sealed blob. The TFC will re-encrypt per
    /// policy, timestamp, attest and route.
    ///
    /// This is the β column of Table 2.
    pub fn complete_via_tfc(
        &self,
        received: &ReceivedActivity,
        responses: &[(String, String)],
    ) -> WfResult<IntermediateActivity> {
        Self::check_responses(received, responses)?;
        let tfc_name = received
            .def
            .tfc
            .as_deref()
            .ok_or_else(|| WfError::Policy("workflow definition names no TFC server".into()))?;
        let tfc_id = self.directory.get(tfc_name)?;

        // {{R_Ai}}Pub(TFC): the plaintext result, sealed so only the TFC
        // can decrypt it. Sealed deterministically from the static DH secret
        // with the TFC, so a crashed agent re-executing the same hop emits
        // byte-identical bytes — the idempotent-digest machinery then
        // recognises the dead agent's copy and the takeover copy as one.
        let plain = build_plain_result_element(responses);
        let key = CerKey::new(received.activity.clone(), received.iter);
        let mut span_seal = self
            .tracer
            .span(stage::SEAL)
            .actor(&self.creds.name)
            .process(&received.report.process_id)
            .activity(&received.activity, received.iter);
        let seal_seed = self.creds.enc.diffie_hellman(&tfc_id.enc);
        let seal_context = format!("{}/{key}", received.report.process_id);
        let sealed = dra_crypto::sealed::seal_deterministic(
            &tfc_id.enc,
            &canonicalize(&plain),
            &seal_seed,
            seal_context.as_bytes(),
        );
        span_seal.attr("tfc", tfc_name);
        span_seal.end();
        let sealed_el =
            Element::new("TfcSealed").attr("tfc", tfc_name).text(dra_crypto::b64::encode(&sealed));

        let mut document = received.doc.clone();
        let mut span_sign = self
            .tracer
            .span(stage::SIGN)
            .actor(&self.creds.name)
            .process(&received.report.process_id)
            .activity(&received.activity, received.iter);
        let cascade = document.cascade_bytes(&sealed_el, &received.preds)?;
        self.crash_point(site::AEA_BEFORE_SIGN)?;
        let sig = sign_detached(&self.creds.sign, &cascade, &format!("{key}"));
        let cer = Element::new("CER")
            .attr("activity", key.activity.clone())
            .attr("iter", key.iter.to_string())
            .attr("participant", self.creds.name.clone())
            .attr("preds", preds_to_attr(&received.preds))
            .child(sealed_el)
            .child(sig);
        document.push_cer(cer)?;
        span_sign.attr("model", "advanced");
        span_sign.end();

        self.crash_point(site::AEA_AFTER_SIGN)?;
        let document = SealedDocument::with_trust(document, received.trust.clone());
        Ok(IntermediateActivity { document, key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (WorkflowDefinition, SecurityPolicy, Credentials, Vec<Credentials>, Directory) {
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "p");
        let amy = Credentials::from_seed("amy", "a");
        let def = WorkflowDefinition::builder("review", "designer")
            .simple_activity("A", "peter", &["amount", "note"])
            .activity(crate::model::Activity {
                id: "B".into(),
                participant: "amy".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "amount"), FieldRef::new("A", "note")],
                responses: vec!["decision".into()],
            })
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap();
        let policy = SecurityPolicy::builder().restrict("A", "amount", &["amy"]).build();
        let dir = Directory::from_credentials([&designer, &peter, &amy]);
        (def, policy, designer, vec![peter, amy], dir)
    }

    fn initial(def: &WorkflowDefinition, pol: &SecurityPolicy, designer: &Credentials) -> String {
        DraDocument::new_initial_with_pid(def, pol, designer, "pid-test").unwrap().to_xml_string()
    }

    #[test]
    fn basic_model_end_to_end() {
        let (def, pol, designer, people, dir) = setup();
        let aea_peter = Aea::new(people[0].clone(), dir.clone());
        let aea_amy = Aea::new(people[1].clone(), dir.clone());

        // Peter executes A.
        let recv = aea_peter.receive(initial(&def, &pol, &designer), "A").unwrap();
        assert_eq!(recv.iter, 0);
        assert_eq!(recv.preds, vec![PredRef::Def]);
        let done = aea_peter
            .complete(&recv, &[("amount".into(), "9000".into()), ("note".into(), "urgent".into())])
            .unwrap();
        assert_eq!(done.route.targets, vec!["B"]);
        assert_eq!(done.key, CerKey::new("A", 0));

        // Amy executes B; sees both fields (amount encrypted to her).
        let recv = aea_amy.receive(done.document.to_xml_string(), "B").unwrap();
        assert_eq!(recv.report.signatures_verified, 2, "designer + peter");
        assert_eq!(recv.visible.len(), 2);
        assert!(recv.visible.iter().any(|(f, v)| f.field == "amount" && v == "9000"));
        assert!(recv.hidden.is_empty());
        let done = aea_amy.complete(&recv, &[("decision".into(), "approve".into())]).unwrap();
        assert!(done.route.ends);
        assert!(done.route.is_final());
        assert_eq!(done.document.cers().unwrap().len(), 2);
    }

    #[test]
    fn wrong_participant_rejected() {
        let (def, pol, designer, people, dir) = setup();
        let aea_amy = Aea::new(people[1].clone(), dir);
        let err = aea_amy.receive(initial(&def, &pol, &designer), "A").unwrap_err();
        assert!(matches!(err, WfError::NotParticipant { expected, .. } if expected == "peter"));
    }

    #[test]
    fn tampered_document_rejected_on_receive() {
        let (def, pol, designer, people, dir) = setup();
        let aea_peter = Aea::new(people[0].clone(), dir.clone());
        let aea_amy = Aea::new(people[1].clone(), dir);
        let recv = aea_peter.receive(initial(&def, &pol, &designer), "A").unwrap();
        let done = aea_peter
            .complete(&recv, &[("amount".into(), "9000".into()), ("note".into(), "x".into())])
            .unwrap();
        // Mallory intercepts the document in flight and alters the public note.
        let tampered = done.document.to_xml_string().replace(">x<", ">y<");
        assert_ne!(tampered, done.document.to_xml_string());
        let err = aea_amy.receive(&tampered, "B").unwrap_err();
        assert!(matches!(err, WfError::Verify(_)), "alteration detected: {err}");
    }

    #[test]
    fn undeclared_response_rejected() {
        let (def, pol, designer, people, dir) = setup();
        let aea_peter = Aea::new(people[0].clone(), dir);
        let recv = aea_peter.receive(initial(&def, &pol, &designer), "A").unwrap();
        let err = aea_peter.complete(&recv, &[("bogus".into(), "1".into())]).unwrap_err();
        assert!(matches!(err, WfError::Flow(_)));
    }

    #[test]
    fn missing_response_rejected() {
        let (def, pol, designer, people, dir) = setup();
        let aea_peter = Aea::new(people[0].clone(), dir);
        let recv = aea_peter.receive(initial(&def, &pol, &designer), "A").unwrap();
        let err = aea_peter.complete(&recv, &[("amount".into(), "1".into())]).unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("note")));
    }

    #[test]
    fn replaying_cer_into_other_process_fails() {
        // The cascade signature covers the header (process id): a CER copied
        // into a different process instance must not verify.
        let (def, pol, designer, people, dir) = setup();
        let aea_peter = Aea::new(people[0].clone(), dir.clone());
        let recv = aea_peter.receive(initial(&def, &pol, &designer), "A").unwrap();
        let done = aea_peter
            .complete(&recv, &[("amount".into(), "1".into()), ("note".into(), "n".into())])
            .unwrap();

        // fresh instance of the same workflow, different process id
        let mut other =
            DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid-other").unwrap();
        let stolen = done.document.cers().unwrap().first().unwrap().element.clone();
        other.push_cer(stolen).unwrap();
        let aea_amy = Aea::new(people[1].clone(), dir);
        let err = aea_amy.receive(other.to_xml_string(), "B").unwrap_err();
        assert!(matches!(err, WfError::Verify(_)), "replay detected: {err}");
    }

    #[test]
    fn hidden_requests_reported() {
        // amount is restricted to amy; if the designer (mis)wires it into a
        // third participant's requests, the AEA reports it as hidden.
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "p");
        let tony = Credentials::from_seed("tony", "t");
        let amy = Credentials::from_seed("amy", "a");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["amount"])
            .activity(crate::model::Activity {
                id: "B".into(),
                participant: "tony".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "amount")],
                responses: vec!["ok".into()],
            })
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap();
        let pol = SecurityPolicy::builder().restrict("A", "amount", &["amy"]).build();
        let dir = Directory::from_credentials([&designer, &peter, &tony, &amy]);
        let aea_peter = Aea::new(peter, dir.clone());
        let recv = aea_peter
            .receive(
                DraDocument::new_initial_with_pid(&def, &pol, &designer, "pid")
                    .unwrap()
                    .to_xml_string(),
                "A",
            )
            .unwrap();
        let done = aea_peter.complete(&recv, &[("amount".into(), "5".into())]).unwrap();
        let aea_tony = Aea::new(tony, dir);
        let recv = aea_tony.receive(done.document.to_xml_string(), "B").unwrap();
        assert!(recv.visible.is_empty());
        assert_eq!(recv.hidden, vec![FieldRef::new("A", "amount")]);
    }
}
