//! Control-flow evaluation and document merging.
//!
//! In an engine-less WfMS the routing decision is made by whoever finished
//! the activity: "the AEA checks the control flow information defined in the
//! workflow definition and forwards X''_Ai to the participant of the next
//! activity (or activities)" (§2.1). In the advanced model the TFC makes
//! the same decision. Both use [`evaluate_route`] with their own key
//! material — which is exactly where the Fig. 4 flow-concealment problem
//! surfaces when the decider cannot read a guarded field.

use crate::document::DraDocument;
use crate::error::{WfError, WfResult};
use crate::fields::{eval_condition, read_field_from_result, FieldReader};
use crate::identity::Credentials;
use crate::model::{ActivityId, CancelRegion, Cardinality, JoinKind, Target, WorkflowDefinition};
use std::collections::HashMap;

/// Where a document goes after an activity completes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Route {
    /// Activities to forward the document to (≥2 means an AND-split).
    pub targets: Vec<ActivityId>,
    /// True when a transition to End fired — the process (or this branch)
    /// terminates.
    pub ends: bool,
}

impl Route {
    /// No further work: the process ends here.
    pub fn is_final(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Evaluate the outgoing transitions of `from`: every transition whose
/// condition holds fires. An activity with no outgoing transitions ends the
/// process implicitly.
pub fn evaluate_route(
    def: &WorkflowDefinition,
    from: &str,
    reader: &dyn FieldReader,
) -> WfResult<Route> {
    let outgoing = def.outgoing(from);
    if outgoing.is_empty() {
        return Ok(Route { targets: Vec::new(), ends: true });
    }
    let mut route = Route::default();
    for t in outgoing {
        let taken = match &t.condition {
            None => true,
            Some(c) => eval_condition(c, reader)?,
        };
        if taken {
            match &t.to {
                Target::Activity(a) => route.targets.push(a.clone()),
                Target::End => route.ends = true,
            }
        }
    }
    if route.targets.is_empty() && !route.ends {
        return Err(WfError::Flow(format!(
            "no outgoing transition of '{from}' is enabled (conditions all false)"
        )));
    }
    Ok(route)
}

/// Resolve the instance count of a multi-instance activity. Static counts
/// are returned as-is; runtime counts are read through `reader` and must
/// parse as an integer ≥ 1.
pub fn resolve_cardinality(
    def: &WorkflowDefinition,
    activity: &str,
    reader: &dyn FieldReader,
) -> WfResult<u32> {
    let Some(m) = def.multi_for(activity) else {
        return Ok(1);
    };
    match &m.cardinality {
        Cardinality::Static(k) => Ok(*k),
        Cardinality::Runtime(r) => {
            let raw = reader.read_field(&r.activity, &r.field)?.ok_or_else(|| {
                WfError::Flow(format!(
                    "multi-instance '{activity}': cardinality field '{}.{}' not produced",
                    r.activity, r.field
                ))
            })?;
            let k: u32 = raw.trim().parse().map_err(|_| {
                WfError::Flow(format!(
                    "multi-instance '{activity}': cardinality field '{}.{}' = '{raw}' is not an integer",
                    r.activity, r.field
                ))
            })?;
            if k == 0 {
                return Err(WfError::Flow(format!(
                    "multi-instance '{activity}': cardinality resolved to 0"
                )));
            }
            Ok(k)
        }
    }
}

/// Like [`evaluate_route`], but aware of multi-instance activities: if
/// `from` is annotated multi-instance and the just-completed iteration
/// `iter` leaves instances outstanding, the route loops back to `from`
/// itself (the next instance); otherwise the normal outgoing transitions
/// are evaluated. Soundness analysis bars multi-instance activities from
/// control-flow cycles, so `iter` counts instances exactly.
pub fn evaluate_route_after(
    def: &WorkflowDefinition,
    from: &str,
    iter: u32,
    reader: &dyn FieldReader,
) -> WfResult<Route> {
    if def.multi_for(from).is_some() {
        let k = resolve_cardinality(def, from, reader)?;
        if iter + 1 < k {
            return Ok(Route { targets: vec![from.to_string()], ends: false });
        }
    }
    evaluate_route(def, from, reader)
}

/// The cancellation regions triggered by the completion of `trigger` whose
/// guard holds (an absent guard always fires).
pub fn fired_cancellations<'a>(
    def: &'a WorkflowDefinition,
    trigger: &str,
    reader: &dyn FieldReader,
) -> WfResult<Vec<&'a CancelRegion>> {
    let mut fired = Vec::new();
    for c in def.cancellations_triggered_by(trigger) {
        let holds = match &c.condition {
            None => true,
            Some(cond) => eval_condition(cond, reader)?,
        };
        if holds {
            fired.push(c);
        }
    }
    Ok(fired)
}

/// True when an AND-join activity has every incoming branch delivered: each
/// control-flow predecessor has executed at least up to the join's next
/// iteration. Activities with [`JoinKind::Any`] are always ready, and so —
/// at the document level — are [`JoinKind::Or`] joins: a synchronizing
/// merge needs runtime knowledge of which branches can still deliver, which
/// only the scheduler has (see `cloud::sched`); the document alone cannot
/// refute readiness.
pub fn join_ready(doc: &DraDocument, def: &WorkflowDefinition, activity: &str) -> WfResult<bool> {
    let act = def.activity(activity)?;
    if matches!(act.join, JoinKind::Any | JoinKind::Or) {
        return Ok(true);
    }
    let next_iter = match doc.latest_iter(activity)? {
        Some(i) => i + 1,
        None => 0,
    };
    for inc in def.incoming(activity) {
        match doc.latest_iter(inc)? {
            Some(i) if i >= next_iter => {}
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// Merge the branch documents arriving at an AND-join:
/// `Set_of_CER(X''_Ap1) ∪ … ∪ Set_of_CER(X''_Apn)` (§2.1).
///
/// All documents must share the same process id and byte-identical
/// application definition; CERs are united by `(activity, iter)` key.
pub fn merge_documents(docs: &[DraDocument]) -> WfResult<DraDocument> {
    let first =
        docs.first().ok_or_else(|| WfError::MergeMismatch("no documents to merge".into()))?;
    let pid = first.process_id()?;
    let def_bytes = first.definition_bytes()?;
    let mut merged = first.clone();
    for doc in &docs[1..] {
        if doc.process_id()? != pid {
            return Err(WfError::MergeMismatch(format!(
                "process id mismatch: '{}' vs '{}'",
                pid,
                doc.process_id()?
            )));
        }
        if doc.definition_bytes()? != def_bytes {
            return Err(WfError::MergeMismatch("application definitions differ".into()));
        }
        let new_cers: Vec<_> = {
            let existing: std::collections::BTreeSet<_> =
                merged.cers()?.iter().map(|c| c.key.clone()).collect();
            doc.cers()?
                .iter()
                .filter(|c| !existing.contains(&c.key))
                .map(|c| c.element.clone())
                .collect()
        };
        for cer in new_cers {
            merged.push_cer(cer)?;
        }
    }
    Ok(merged)
}

/// A [`FieldReader`] over a DRA4WfMS document from one actor's viewpoint:
/// reads the latest result of each activity, decrypting with the actor's
/// keys where the audience allows, with an overlay of fresh (not yet
/// embedded) responses for the activity currently being completed.
pub struct DocFieldReader<'a> {
    doc: &'a DraDocument,
    /// Acting identity name.
    pub name: String,
    creds: Option<&'a Credentials>,
    overlay: HashMap<(String, String), String>,
}

impl<'a> DocFieldReader<'a> {
    /// Reader without decryption capability (sees only plaintext fields).
    pub fn public(doc: &'a DraDocument) -> DocFieldReader<'a> {
        DocFieldReader { doc, name: String::new(), creds: None, overlay: HashMap::new() }
    }

    /// Reader with an actor's credentials.
    pub fn for_actor(doc: &'a DraDocument, creds: &'a Credentials) -> DocFieldReader<'a> {
        DocFieldReader {
            doc,
            name: creds.name.clone(),
            creds: Some(creds),
            overlay: HashMap::new(),
        }
    }

    /// Overlay fresh responses of `activity` (they take precedence over any
    /// embedded CER of that activity).
    pub fn with_overlay(mut self, activity: &str, responses: &[(String, String)]) -> Self {
        for (f, v) in responses {
            self.overlay.insert((activity.to_string(), f.clone()), v.clone());
        }
        self
    }
}

impl FieldReader for DocFieldReader<'_> {
    fn read_field(&self, activity: &str, field: &str) -> WfResult<Option<String>> {
        if let Some(v) = self.overlay.get(&(activity.to_string(), field.to_string())) {
            return Ok(Some(v.clone()));
        }
        let Some(iter) = self.doc.latest_iter(activity)? else {
            return Ok(None);
        };
        let cer = self
            .doc
            .find_cer(&crate::document::CerKey::new(activity, iter))?
            .expect("latest_iter implies existence");
        let Some(result) = cer.result() else {
            return Ok(None); // intermediate CER: result still sealed to TFC
        };
        read_field_from_result(result, activity, field, &self.name, self.creds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DraDocument;
    use crate::identity::Credentials;
    use crate::model::{Condition, JoinKind, WorkflowDefinition};
    use crate::policy::SecurityPolicy;
    use dra_xml::Element;

    fn fig9a_def() -> WorkflowDefinition {
        // Fig. 9A: A -> AND-split(B1, B2) -> AND-join C -> loop/accept -> D
        WorkflowDefinition::builder("fig9a", "designer")
            .simple_activity("A", "p_a", &["attachment"])
            .simple_activity("B1", "p_b1", &["review1"])
            .simple_activity("B2", "p_b2", &["review2"])
            .activity(crate::model::Activity {
                id: "C".into(),
                participant: "p_c".into(),
                join: JoinKind::All,
                requests: vec![],
                responses: vec!["decision".into()],
            })
            .simple_activity("D", "p_d", &["ack"])
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
            .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
            .flow_end("D")
            .build()
            .unwrap()
    }

    struct MapReader(HashMap<(String, String), String>);
    impl FieldReader for MapReader {
        fn read_field(&self, a: &str, f: &str) -> WfResult<Option<String>> {
            Ok(self.0.get(&(a.to_string(), f.to_string())).cloned())
        }
    }

    fn reader(entries: &[(&str, &str, &str)]) -> MapReader {
        MapReader(
            entries
                .iter()
                .map(|(a, f, v)| ((a.to_string(), f.to_string()), v.to_string()))
                .collect(),
        )
    }

    #[test]
    fn and_split_routes_to_both() {
        let def = fig9a_def();
        let r = evaluate_route(&def, "A", &reader(&[])).unwrap();
        assert_eq!(r.targets, vec!["B1", "B2"]);
        assert!(!r.ends);
    }

    #[test]
    fn or_split_takes_matching_branch() {
        let def = fig9a_def();
        let r = evaluate_route(&def, "C", &reader(&[("C", "decision", "insufficient")])).unwrap();
        assert_eq!(r.targets, vec!["A"], "loop back");
        let r = evaluate_route(&def, "C", &reader(&[("C", "decision", "accept")])).unwrap();
        assert_eq!(r.targets, vec!["D"]);
    }

    #[test]
    fn end_transition() {
        let def = fig9a_def();
        let r = evaluate_route(&def, "D", &reader(&[])).unwrap();
        assert!(r.ends);
        assert!(r.is_final());
    }

    #[test]
    fn unreadable_condition_propagates() {
        struct Denies;
        impl FieldReader for Denies {
            fn read_field(&self, a: &str, f: &str) -> WfResult<Option<String>> {
                Err(WfError::FieldNotReadable {
                    activity: a.into(),
                    field: f.into(),
                    reader: "tony".into(),
                })
            }
        }
        let def = fig9a_def();
        assert!(matches!(
            evaluate_route(&def, "C", &Denies),
            Err(WfError::FieldNotReadable { .. })
        ));
    }

    #[test]
    fn no_enabled_transition_is_an_error() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "1"))
            .flow_end("B")
            .build()
            .unwrap();
        assert!(matches!(
            evaluate_route(&def, "A", &reader(&[("A", "x", "2")])),
            Err(WfError::Flow(_))
        ));
    }

    fn structural_doc(def: &WorkflowDefinition, cers: &[(&str, u32)]) -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let mut doc =
            DraDocument::new_initial_with_pid(def, &SecurityPolicy::public(), &designer, "pid")
                .unwrap();
        for (a, i) in cers {
            let participant = def.activity(a).unwrap().participant.clone();
            doc.push_cer(
                Element::new("CER")
                    .attr("activity", *a)
                    .attr("iter", i.to_string())
                    .attr("participant", participant)
                    .attr("preds", "Def"),
            )
            .unwrap();
        }
        doc
    }

    #[test]
    fn join_readiness() {
        let def = fig9a_def();
        // C is an AND-join of B1 and B2.
        let doc = structural_doc(&def, &[("A", 0), ("B1", 0)]);
        assert!(!join_ready(&doc, &def, "C").unwrap(), "B2 missing");
        let doc = structural_doc(&def, &[("A", 0), ("B1", 0), ("B2", 0)]);
        assert!(join_ready(&doc, &def, "C").unwrap());
        // second iteration requires both branches again
        let doc =
            structural_doc(&def, &[("A", 0), ("B1", 0), ("B2", 0), ("C", 0), ("A", 1), ("B1", 1)]);
        assert!(!join_ready(&doc, &def, "C").unwrap());
        // Any-join activities are always ready
        assert!(join_ready(&doc, &def, "D").unwrap());
    }

    #[test]
    fn multi_instance_routes_back_until_cardinality_met() {
        let def = WorkflowDefinition::builder("multi", "d")
            .simple_activity("A", "p", &["n"])
            .simple_activity("B", "q", &["part"])
            .simple_activity("C", "r", &[])
            .flow("A", "B")
            .flow("B", "C")
            .flow_end("C")
            .multi_runtime("B", "A", "n")
            .build()
            .unwrap();
        let r = reader(&[("A", "n", "3")]);
        assert_eq!(resolve_cardinality(&def, "B", &r).unwrap(), 3);
        let route = evaluate_route_after(&def, "B", 0, &r).unwrap();
        assert_eq!(route.targets, vec!["B"], "instance 2 of 3");
        let route = evaluate_route_after(&def, "B", 1, &r).unwrap();
        assert_eq!(route.targets, vec!["B"], "instance 3 of 3");
        let route = evaluate_route_after(&def, "B", 2, &r).unwrap();
        assert_eq!(route.targets, vec!["C"], "all instances done");
        // non-multi activities route normally
        let route = evaluate_route_after(&def, "A", 0, &r).unwrap();
        assert_eq!(route.targets, vec!["B"]);
    }

    #[test]
    fn runtime_cardinality_must_be_positive_integer() {
        let def = WorkflowDefinition::builder("multi", "d")
            .simple_activity("A", "p", &["n"])
            .simple_activity("B", "q", &[])
            .flow("A", "B")
            .flow_end("B")
            .multi_runtime("B", "A", "n")
            .build()
            .unwrap();
        assert!(matches!(
            resolve_cardinality(&def, "B", &reader(&[("A", "n", "zero")])),
            Err(WfError::Flow(m)) if m.contains("not an integer")
        ));
        assert!(matches!(
            resolve_cardinality(&def, "B", &reader(&[("A", "n", "0")])),
            Err(WfError::Flow(m)) if m.contains("resolved to 0")
        ));
        assert!(matches!(
            resolve_cardinality(&def, "B", &reader(&[])),
            Err(WfError::Flow(m)) if m.contains("not produced")
        ));
    }

    #[test]
    fn or_join_is_document_level_ready() {
        let def = WorkflowDefinition::builder("orj", "d")
            .simple_activity("A", "p", &["mode"])
            .simple_activity("B1", "q", &["x"])
            .simple_activity("B2", "r", &["y"])
            .activity(crate::model::Activity {
                id: "J".into(),
                participant: "s".into(),
                join: JoinKind::Or,
                requests: vec![],
                responses: vec![],
            })
            .flow("A", "B1")
            .flow_if("A", "B2", Condition::field_equals("A", "mode", "both"))
            .flow("B1", "J")
            .flow("B2", "J")
            .flow_end("J")
            .build()
            .unwrap();
        let doc = structural_doc(&def, &[("A", 0), ("B1", 0)]);
        assert!(join_ready(&doc, &def, "J").unwrap());
    }

    #[test]
    fn cancellations_fire_by_condition() {
        let def = WorkflowDefinition::builder("cx", "d")
            .simple_activity("A", "p", &["mode"])
            .simple_activity("B", "q", &["r"])
            .simple_activity("C", "r", &["s"])
            .flow("A", "B")
            .flow("A", "C")
            .flow_end("B")
            .flow_end("C")
            .cancel_on_if("B", Condition::field_equals("A", "mode", "solo"), &["C"])
            .build()
            .unwrap();
        let fired = fired_cancellations(&def, "B", &reader(&[("A", "mode", "solo")])).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].region, vec!["C"]);
        let fired = fired_cancellations(&def, "B", &reader(&[("A", "mode", "both")])).unwrap();
        assert!(fired.is_empty());
        let fired = fired_cancellations(&def, "A", &reader(&[])).unwrap();
        assert!(fired.is_empty(), "A triggers nothing");
    }

    #[test]
    fn merge_unions_cers() {
        let def = fig9a_def();
        let base = structural_doc(&def, &[("A", 0)]);
        let mut left = base.clone();
        left.push_cer(
            Element::new("CER")
                .attr("activity", "B1")
                .attr("iter", "0")
                .attr("participant", "p_b1")
                .attr("preds", "A#0"),
        )
        .unwrap();
        let mut right = base.clone();
        right
            .push_cer(
                Element::new("CER")
                    .attr("activity", "B2")
                    .attr("iter", "0")
                    .attr("participant", "p_b2")
                    .attr("preds", "A#0"),
            )
            .unwrap();
        let merged = merge_documents(&[left, right]).unwrap();
        let keys: Vec<String> = merged.cers().unwrap().iter().map(|c| c.key.to_string()).collect();
        assert_eq!(keys, vec!["A#0", "B1#0", "B2#0"]);
    }

    #[test]
    fn merge_dedupes_shared_prefix() {
        let def = fig9a_def();
        let doc = structural_doc(&def, &[("A", 0), ("B1", 0)]);
        let merged = merge_documents(&[doc.clone(), doc.clone()]).unwrap();
        assert_eq!(merged.cers().unwrap().len(), 2);
    }

    #[test]
    fn merge_rejects_different_processes() {
        let def = fig9a_def();
        let designer = Credentials::from_seed("designer", "d");
        let d1 =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-1")
                .unwrap();
        let d2 =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-2")
                .unwrap();
        assert!(matches!(merge_documents(&[d1, d2]), Err(WfError::MergeMismatch(_))));
    }

    #[test]
    fn merge_empty_list_errors() {
        assert!(merge_documents(&[]).is_err());
    }

    #[test]
    fn doc_reader_overlay_takes_precedence() {
        let def = fig9a_def();
        let doc = structural_doc(&def, &[]);
        let r = DocFieldReader::public(&doc)
            .with_overlay("A", &[("attachment".to_string(), "fresh".to_string())]);
        assert_eq!(r.read_field("A", "attachment").unwrap(), Some("fresh".into()));
        assert_eq!(r.read_field("A", "other").unwrap(), None);
    }
}
