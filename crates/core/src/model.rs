//! The workflow process definition: activities, participants, control flow
//! (sequence, AND-split/AND-join, OR-split, loops), request/response forms.
//!
//! Mirrors the first part of the paper's "Def": "the starting and stopping
//! conditions of the workflow process, the activities in the process,
//! control and data flows among these activities, and the requests and
//! responses of each activity" (§2). The definition serializes to XML so it
//! can live inside the routed document and be covered by the designer's
//! signature.

use crate::error::{WfError, WfResult};
use dra_xml::Element;
use std::collections::{BTreeSet, VecDeque};

/// Identifier of an activity within a workflow (e.g. `"A1"`).
pub type ActivityId = String;

/// How an activity with multiple incoming transitions becomes enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinKind {
    /// Enabled by any single incoming transition (XOR-join; also the value
    /// for activities with one predecessor).
    #[default]
    Any,
    /// Enabled only when every incoming branch has delivered a document
    /// (AND-join). The branch documents are merged before execution.
    All,
}

/// A reference to a response field produced by an earlier activity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FieldRef {
    /// The producing activity.
    pub activity: ActivityId,
    /// The field name within that activity's response.
    pub field: String,
}

impl FieldRef {
    /// Convenience constructor.
    pub fn new(activity: impl Into<String>, field: impl Into<String>) -> FieldRef {
        FieldRef { activity: activity.into(), field: field.into() }
    }
}

/// A logical step of the workflow, executed by one participant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Activity {
    /// Unique id (node in the control-flow graph).
    pub id: ActivityId,
    /// The participant allowed to execute this activity.
    pub participant: String,
    /// Join behaviour when multiple transitions point here.
    pub join: JoinKind,
    /// Fields from earlier activities shown to the participant (the
    /// "requests" of the paper).
    pub requests: Vec<FieldRef>,
    /// Field names the participant must produce (the "responses").
    pub responses: Vec<String>,
}

/// A boolean predicate over a produced field, used on conditional
/// transitions (OR-splits, loop back-edges) and conditional security rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condition {
    /// The activity whose latest result is consulted.
    pub activity: ActivityId,
    /// The field within that result.
    pub field: String,
    /// The comparison value.
    pub equals: String,
    /// Negate the comparison (`!=` instead of `==`).
    pub negate: bool,
}

impl Condition {
    /// `activity.field == value`
    pub fn field_equals(
        activity: impl Into<String>,
        field: impl Into<String>,
        value: impl Into<String>,
    ) -> Condition {
        Condition {
            activity: activity.into(),
            field: field.into(),
            equals: value.into(),
            negate: false,
        }
    }

    /// `activity.field != value`
    pub fn field_not_equals(
        activity: impl Into<String>,
        field: impl Into<String>,
        value: impl Into<String>,
    ) -> Condition {
        Condition { negate: true, ..Condition::field_equals(activity, field, value) }
    }

    /// Evaluate against a plaintext field value.
    pub fn matches(&self, value: &str) -> bool {
        (value == self.equals) != self.negate
    }
}

/// Where a transition leads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Another activity.
    Activity(ActivityId),
    /// The end of the workflow process.
    End,
}

/// A directed control-flow edge. All outgoing transitions of an activity
/// whose condition holds fire simultaneously — so several unconditional
/// transitions form an AND-split, and mutually exclusive conditions form an
/// OR-split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Source activity.
    pub from: ActivityId,
    /// Destination.
    pub to: Target,
    /// Optional guard; `None` means always taken.
    pub condition: Option<Condition>,
}

/// The complete workflow process definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowDefinition {
    /// Human-readable process name.
    pub name: String,
    /// The workflow designer's identity name (signs the initial document).
    pub designer: String,
    /// The start activity (executed first, may be re-entered by loops).
    pub start: ActivityId,
    /// All activities.
    pub activities: Vec<Activity>,
    /// All control-flow edges.
    pub transitions: Vec<Transition>,
    /// Name of the TFC server identity when the advanced operational model
    /// is used; `None` selects the basic model.
    pub tfc: Option<String>,
}

impl WorkflowDefinition {
    /// Start building a definition.
    pub fn builder(name: impl Into<String>, designer: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            def: WorkflowDefinition {
                name: name.into(),
                designer: designer.into(),
                start: String::new(),
                activities: Vec::new(),
                transitions: Vec::new(),
                tfc: None,
            },
        }
    }

    /// Look up an activity.
    pub fn activity(&self, id: &str) -> WfResult<&Activity> {
        self.activities
            .iter()
            .find(|a| a.id == id)
            .ok_or_else(|| WfError::UnknownActivity(id.to_string()))
    }

    /// Activities with a transition into `id`.
    pub fn incoming(&self, id: &str) -> Vec<&ActivityId> {
        self.transitions
            .iter()
            .filter(|t| matches!(&t.to, Target::Activity(a) if a == id))
            .map(|t| &t.from)
            .collect()
    }

    /// Transitions out of `id`.
    pub fn outgoing(&self, id: &str) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.from == id).collect()
    }

    /// Structural validation: unique ids, known references, reachability of
    /// every activity from the start, and at least one path to End.
    pub fn validate(&self) -> WfResult<()> {
        let mut ids = BTreeSet::new();
        for a in &self.activities {
            if !ids.insert(a.id.as_str()) {
                return Err(WfError::Flow(format!("duplicate activity id '{}'", a.id)));
            }
            if a.participant.is_empty() {
                return Err(WfError::Flow(format!("activity '{}' has no participant", a.id)));
            }
        }
        if !ids.contains(self.start.as_str()) {
            return Err(WfError::UnknownActivity(self.start.clone()));
        }
        let mut reaches_end = false;
        for t in &self.transitions {
            if !ids.contains(t.from.as_str()) {
                return Err(WfError::UnknownActivity(t.from.clone()));
            }
            match &t.to {
                Target::Activity(a) => {
                    if !ids.contains(a.as_str()) {
                        return Err(WfError::UnknownActivity(a.clone()));
                    }
                }
                Target::End => reaches_end = true,
            }
        }
        if !reaches_end {
            return Err(WfError::Flow("no transition reaches End".into()));
        }
        // reachability from start
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([self.start.as_str()]);
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur) {
                continue;
            }
            for t in self.outgoing(cur) {
                if let Target::Activity(a) = &t.to {
                    queue.push_back(a.as_str());
                }
            }
        }
        for a in &self.activities {
            if !seen.contains(a.id.as_str()) {
                return Err(WfError::Flow(format!(
                    "activity '{}' unreachable from start '{}'",
                    a.id, self.start
                )));
            }
        }
        // requests must reference known activities and declared responses
        for a in &self.activities {
            for r in &a.requests {
                let src = self.activity(&r.activity)?;
                if !src.responses.contains(&r.field) {
                    return Err(WfError::Flow(format!(
                        "activity '{}' requests unknown field '{}.{}'",
                        a.id, r.activity, r.field
                    )));
                }
            }
        }
        // conditions must reference known fields
        for t in &self.transitions {
            if let Some(c) = &t.condition {
                let src = self.activity(&c.activity)?;
                if !src.responses.contains(&c.field) {
                    return Err(WfError::Flow(format!(
                        "transition {} -> {:?} conditions on unknown field '{}.{}'",
                        t.from, t.to, c.activity, c.field
                    )));
                }
            }
        }
        Ok(())
    }

    /// All fields referenced by any transition condition (these must be
    /// readable by whoever evaluates routing — see
    /// `SecurityPolicy::with_tfc_access`).
    pub fn condition_fields(&self) -> BTreeSet<FieldRef> {
        self.transitions
            .iter()
            .filter_map(|t| t.condition.as_ref())
            .map(|c| FieldRef::new(c.activity.clone(), c.field.clone()))
            .collect()
    }

    // -- XML serialization ---------------------------------------------------

    /// Serialize to the `<WorkflowDefinition>` element embedded in documents.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("WorkflowDefinition")
            .attr("name", self.name.clone())
            .attr("designer", self.designer.clone())
            .attr("start", self.start.clone());
        if let Some(tfc) = &self.tfc {
            root.set_attr("tfc", tfc.clone());
        }
        for a in &self.activities {
            let mut el = Element::new("Activity")
                .attr("id", a.id.clone())
                .attr("participant", a.participant.clone());
            if a.join == JoinKind::All {
                el.set_attr("join", "all");
            }
            for r in &a.requests {
                el.push_child(
                    Element::new("Request")
                        .attr("activity", r.activity.clone())
                        .attr("field", r.field.clone()),
                );
            }
            for f in &a.responses {
                el.push_child(Element::new("Response").attr("field", f.clone()));
            }
            root.push_child(el);
        }
        for t in &self.transitions {
            let mut el = Element::new("Transition").attr("from", t.from.clone());
            match &t.to {
                Target::Activity(a) => el.set_attr("to", a.clone()),
                Target::End => el.set_attr("to", "#end"),
            }
            if let Some(c) = &t.condition {
                el.push_child(condition_to_xml(c));
            }
            root.push_child(el);
        }
        root
    }

    /// Parse back from XML.
    pub fn from_xml(el: &Element) -> WfResult<WorkflowDefinition> {
        if el.name != "WorkflowDefinition" {
            return Err(WfError::Malformed(format!(
                "expected <WorkflowDefinition>, found <{}>",
                el.name
            )));
        }
        let attr = |k: &str| -> WfResult<String> {
            el.get_attr(k)
                .map(str::to_string)
                .ok_or_else(|| WfError::Malformed(format!("WorkflowDefinition missing @{k}")))
        };
        let mut def = WorkflowDefinition {
            name: attr("name")?,
            designer: attr("designer")?,
            start: attr("start")?,
            activities: Vec::new(),
            transitions: Vec::new(),
            tfc: el.get_attr("tfc").map(str::to_string),
        };
        for a in el.find_children("Activity") {
            let id = a
                .get_attr("id")
                .ok_or_else(|| WfError::Malformed("Activity missing @id".into()))?;
            let participant = a
                .get_attr("participant")
                .ok_or_else(|| WfError::Malformed("Activity missing @participant".into()))?;
            let mut act = Activity {
                id: id.to_string(),
                participant: participant.to_string(),
                join: if a.get_attr("join") == Some("all") { JoinKind::All } else { JoinKind::Any },
                requests: Vec::new(),
                responses: Vec::new(),
            };
            for r in a.find_children("Request") {
                act.requests.push(FieldRef::new(
                    r.get_attr("activity").unwrap_or_default(),
                    r.get_attr("field").unwrap_or_default(),
                ));
            }
            for r in a.find_children("Response") {
                act.responses.push(r.get_attr("field").unwrap_or_default().to_string());
            }
            def.activities.push(act);
        }
        for t in el.find_children("Transition") {
            let from = t
                .get_attr("from")
                .ok_or_else(|| WfError::Malformed("Transition missing @from".into()))?;
            let to_attr = t
                .get_attr("to")
                .ok_or_else(|| WfError::Malformed("Transition missing @to".into()))?;
            let to =
                if to_attr == "#end" { Target::End } else { Target::Activity(to_attr.to_string()) };
            let condition = match t.find_child("Condition") {
                Some(c) => Some(condition_from_xml(c)?),
                None => None,
            };
            def.transitions.push(Transition { from: from.to_string(), to, condition });
        }
        Ok(def)
    }
}

impl WorkflowDefinition {
    /// Render the control-flow graph in Graphviz dot format (for
    /// documentation and debugging of process definitions).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
        out.push_str("  start [shape=circle label=\"\" style=filled fillcolor=black width=0.2];\n");
        out.push_str(
            "  end [shape=doublecircle label=\"\" style=filled fillcolor=black width=0.15];\n",
        );
        for a in &self.activities {
            let shape = if a.join == JoinKind::All { "box3d" } else { "box" };
            out.push_str(&format!(
                "  \"{}\" [shape={shape} label=\"{}\\n({})\"];\n",
                a.id, a.id, a.participant
            ));
        }
        out.push_str(&format!("  start -> \"{}\";\n", self.start));
        for t in &self.transitions {
            let to = match &t.to {
                Target::Activity(a) => format!("\"{a}\""),
                Target::End => "end".to_string(),
            };
            let label = match &t.condition {
                Some(c) => format!(
                    " [label=\"{}.{} {} {}\"]",
                    c.activity,
                    c.field,
                    if c.negate { "!=" } else { "==" },
                    c.equals
                ),
                None => String::new(),
            };
            out.push_str(&format!("  \"{}\" -> {to}{label};\n", t.from));
        }
        out.push_str("}\n");
        out
    }
}

/// Serialize a [`Condition`] to XML.
pub fn condition_to_xml(c: &Condition) -> Element {
    Element::new("Condition")
        .attr("activity", c.activity.clone())
        .attr("field", c.field.clone())
        .attr("equals", c.equals.clone())
        .attr("negate", if c.negate { "true" } else { "false" })
}

/// Parse a [`Condition`] from XML.
pub fn condition_from_xml(el: &Element) -> WfResult<Condition> {
    let attr = |k: &str| -> WfResult<String> {
        el.get_attr(k)
            .map(str::to_string)
            .ok_or_else(|| WfError::Malformed(format!("Condition missing @{k}")))
    };
    Ok(Condition {
        activity: attr("activity")?,
        field: attr("field")?,
        equals: attr("equals")?,
        negate: el.get_attr("negate") == Some("true"),
    })
}

/// Fluent builder for workflow definitions.
pub struct WorkflowBuilder {
    def: WorkflowDefinition,
}

impl WorkflowBuilder {
    /// Add an activity. The first added activity becomes the start unless
    /// [`WorkflowBuilder::start`] overrides it.
    pub fn activity(mut self, a: Activity) -> Self {
        if self.def.start.is_empty() {
            self.def.start = a.id.clone();
        }
        self.def.activities.push(a);
        self
    }

    /// Shorthand: activity with participant and response fields, no
    /// requests, Any-join.
    pub fn simple_activity(
        self,
        id: impl Into<String>,
        participant: impl Into<String>,
        responses: &[&str],
    ) -> Self {
        self.activity(Activity {
            id: id.into(),
            participant: participant.into(),
            join: JoinKind::Any,
            requests: Vec::new(),
            responses: responses.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Set the start activity explicitly.
    pub fn start(mut self, id: impl Into<String>) -> Self {
        self.def.start = id.into();
        self
    }

    /// Unconditional transition between activities.
    pub fn flow(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::Activity(to.into()),
            condition: None,
        });
        self
    }

    /// Conditional transition.
    pub fn flow_if(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        condition: Condition,
    ) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::Activity(to.into()),
            condition: Some(condition),
        });
        self
    }

    /// Transition to the end of the workflow.
    pub fn flow_end(mut self, from: impl Into<String>) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::End,
            condition: None,
        });
        self
    }

    /// Conditional transition to the end.
    pub fn flow_end_if(mut self, from: impl Into<String>, condition: Condition) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::End,
            condition: Some(condition),
        });
        self
    }

    /// Use the advanced operational model with the given TFC identity name.
    pub fn with_tfc(mut self, tfc: impl Into<String>) -> Self {
        self.def.tfc = Some(tfc.into());
        self
    }

    /// Validate and return the definition.
    pub fn build(self) -> WfResult<WorkflowDefinition> {
        self.def.validate()?;
        Ok(self.def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> WorkflowDefinition {
        WorkflowDefinition::builder("linear", "designer")
            .simple_activity("A1", "peter", &["x"])
            .simple_activity("A2", "amy", &["y"])
            .flow("A1", "A2")
            .flow_end("A2")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_sets_start() {
        let def = linear();
        assert_eq!(def.start, "A1");
        assert_eq!(def.activities.len(), 2);
    }

    #[test]
    fn incoming_outgoing() {
        let def = linear();
        assert_eq!(def.incoming("A2"), vec!["A1"]);
        assert!(def.incoming("A1").is_empty());
        assert_eq!(def.outgoing("A1").len(), 1);
        assert_eq!(def.outgoing("A2").len(), 1);
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("A", "q", &[])
            .flow_end("A")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(_)));
    }

    #[test]
    fn validate_rejects_unknown_transition_target() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .flow("A", "GHOST")
            .flow_end("A")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::UnknownActivity(a) if a == "GHOST"));
    }

    #[test]
    fn validate_rejects_unreachable_activity() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("ISLAND", "q", &[])
            .flow_end("A")
            .flow_end("ISLAND")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("unreachable")));
    }

    #[test]
    fn validate_requires_end() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("End")));
    }

    #[test]
    fn validate_rejects_unknown_request_field() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &["x"])
            .activity(Activity {
                id: "B".into(),
                participant: "q".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "nope")],
                responses: vec![],
            })
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("nope")));
    }

    #[test]
    fn validate_rejects_condition_on_unknown_field() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "ghost", "1"))
            .flow_end("B")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("ghost")));
    }

    #[test]
    fn condition_matches() {
        let c = Condition::field_equals("A", "decision", "approve");
        assert!(c.matches("approve"));
        assert!(!c.matches("reject"));
        let n = Condition::field_not_equals("A", "decision", "approve");
        assert!(!n.matches("approve"));
        assert!(n.matches("reject"));
    }

    #[test]
    fn xml_roundtrip_rich_workflow() {
        let def = WorkflowDefinition::builder("rich", "designer")
            .simple_activity("A", "p1", &["decision", "amount"])
            .activity(Activity {
                id: "B1".into(),
                participant: "p2".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "amount")],
                responses: vec!["review".into()],
            })
            .simple_activity("B2", "p3", &["review"])
            .activity(Activity {
                id: "C".into(),
                participant: "p4".into(),
                join: JoinKind::All,
                requests: vec![],
                responses: vec!["final".into()],
            })
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_if("C", "A", Condition::field_equals("C", "final", "reject"))
            .flow_end_if("C", Condition::field_not_equals("C", "final", "reject"))
            .with_tfc("TFC")
            .build()
            .unwrap();
        let xml = def.to_xml();
        let parsed = WorkflowDefinition::from_xml(&xml).unwrap();
        assert_eq!(parsed, def);
        // And survives the wire.
        let wire = dra_xml::writer::to_string(&xml);
        let reparsed = WorkflowDefinition::from_xml(&dra_xml::parse(&wire).unwrap()).unwrap();
        assert_eq!(reparsed, def);
    }

    #[test]
    fn dot_export_mentions_everything() {
        let def = linear();
        let dot = def.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"A1\""));
        assert!(dot.contains("(peter)"));
        assert!(dot.contains("start -> \"A1\""));
        assert!(dot.contains("-> end"));
    }

    #[test]
    fn dot_export_labels_conditions() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "go"))
            .flow_end_if("A", Condition::field_not_equals("A", "x", "go"))
            .flow_end("B")
            .build()
            .unwrap();
        let dot = def.to_dot();
        assert!(dot.contains("A.x == go"));
        assert!(dot.contains("A.x != go"));
    }

    #[test]
    fn condition_fields_collected() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "1"))
            .flow_end_if("A", Condition::field_not_equals("A", "x", "1"))
            .flow_end("B")
            .build()
            .unwrap();
        let fields = def.condition_fields();
        assert_eq!(fields.len(), 1);
        assert!(fields.contains(&FieldRef::new("A", "x")));
    }
}
