//! The workflow process definition: activities, participants, control flow
//! (sequence, AND-split/AND-join, OR-split, loops), request/response forms.
//!
//! Mirrors the first part of the paper's "Def": "the starting and stopping
//! conditions of the workflow process, the activities in the process,
//! control and data flows among these activities, and the requests and
//! responses of each activity" (§2). The definition serializes to XML so it
//! can live inside the routed document and be covered by the designer's
//! signature.

use crate::error::{WfError, WfResult};
use dra_xml::Element;
use std::collections::{BTreeSet, VecDeque};

/// Identifier of an activity within a workflow (e.g. `"A1"`).
pub type ActivityId = String;

/// How an activity with multiple incoming transitions becomes enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinKind {
    /// Enabled by any single incoming transition (XOR-join; also the value
    /// for activities with one predecessor).
    #[default]
    Any,
    /// Enabled only when every incoming branch has delivered a document
    /// (AND-join). The branch documents are merged before execution.
    All,
    /// Synchronizing merge (OR-join): waits for every incoming branch that
    /// *can still deliver*, then fires once with whatever arrived. The
    /// structural readiness rule is evaluated by the scheduler: the join is
    /// enabled when at least one branch has delivered and no activity that
    /// can reach the join still has work pending.
    Or,
}

/// A reference to a response field produced by an earlier activity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FieldRef {
    /// The producing activity.
    pub activity: ActivityId,
    /// The field name within that activity's response.
    pub field: String,
}

impl FieldRef {
    /// Convenience constructor.
    pub fn new(activity: impl Into<String>, field: impl Into<String>) -> FieldRef {
        FieldRef { activity: activity.into(), field: field.into() }
    }
}

/// A logical step of the workflow, executed by one participant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Activity {
    /// Unique id (node in the control-flow graph).
    pub id: ActivityId,
    /// The participant allowed to execute this activity.
    pub participant: String,
    /// Join behaviour when multiple transitions point here.
    pub join: JoinKind,
    /// Fields from earlier activities shown to the participant (the
    /// "requests" of the paper).
    pub requests: Vec<FieldRef>,
    /// Field names the participant must produce (the "responses").
    pub responses: Vec<String>,
}

/// A boolean predicate over a produced field, used on conditional
/// transitions (OR-splits, loop back-edges) and conditional security rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condition {
    /// The activity whose latest result is consulted.
    pub activity: ActivityId,
    /// The field within that result.
    pub field: String,
    /// The comparison value.
    pub equals: String,
    /// Negate the comparison (`!=` instead of `==`).
    pub negate: bool,
}

impl Condition {
    /// `activity.field == value`
    pub fn field_equals(
        activity: impl Into<String>,
        field: impl Into<String>,
        value: impl Into<String>,
    ) -> Condition {
        Condition {
            activity: activity.into(),
            field: field.into(),
            equals: value.into(),
            negate: false,
        }
    }

    /// `activity.field != value`
    pub fn field_not_equals(
        activity: impl Into<String>,
        field: impl Into<String>,
        value: impl Into<String>,
    ) -> Condition {
        Condition { negate: true, ..Condition::field_equals(activity, field, value) }
    }

    /// Evaluate against a plaintext field value.
    pub fn matches(&self, value: &str) -> bool {
        (value == self.equals) != self.negate
    }
}

/// How many instances of a multi-instance activity run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cardinality {
    /// A fixed instance count known at design time (must be ≥ 1).
    Static(u32),
    /// The instance count is read at runtime from a field produced by an
    /// earlier activity; the value must parse as an integer ≥ 1.
    Runtime(FieldRef),
}

/// A multi-instance annotation: the named activity executes `cardinality`
/// times (as consecutive iterations by the same participant) before its
/// outgoing transitions are evaluated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiInstance {
    /// The activity that runs multiple times.
    pub activity: ActivityId,
    /// How many instances.
    pub cardinality: Cardinality,
}

/// A cancellation region: when `trigger` completes (and the optional
/// condition over its result holds), every pending piece of work for the
/// activities in `region` is withdrawn — their delivered-but-unexecuted
/// documents are discarded and they are never dispatched again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CancelRegion {
    /// The activity whose completion triggers the cancellation.
    pub trigger: ActivityId,
    /// Optional guard over the trigger's (or an earlier) result; `None`
    /// means the region is cancelled whenever `trigger` completes.
    pub condition: Option<Condition>,
    /// The activities whose pending work is withdrawn.
    pub region: Vec<ActivityId>,
}

/// Where a transition leads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Another activity.
    Activity(ActivityId),
    /// The end of the workflow process.
    End,
}

/// A directed control-flow edge. All outgoing transitions of an activity
/// whose condition holds fire simultaneously — so several unconditional
/// transitions form an AND-split, and mutually exclusive conditions form an
/// OR-split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Source activity.
    pub from: ActivityId,
    /// Destination.
    pub to: Target,
    /// Optional guard; `None` means always taken.
    pub condition: Option<Condition>,
}

/// The complete workflow process definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowDefinition {
    /// Human-readable process name.
    pub name: String,
    /// The workflow designer's identity name (signs the initial document).
    pub designer: String,
    /// The start activity (executed first, may be re-entered by loops).
    pub start: ActivityId,
    /// All activities.
    pub activities: Vec<Activity>,
    /// All control-flow edges.
    pub transitions: Vec<Transition>,
    /// Multi-instance annotations (at most one per activity).
    pub multi: Vec<MultiInstance>,
    /// Cancellation regions.
    pub cancellations: Vec<CancelRegion>,
    /// Name of the TFC server identity when the advanced operational model
    /// is used; `None` selects the basic model.
    pub tfc: Option<String>,
}

impl WorkflowDefinition {
    /// Start building a definition.
    pub fn builder(name: impl Into<String>, designer: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            def: WorkflowDefinition {
                name: name.into(),
                designer: designer.into(),
                start: String::new(),
                activities: Vec::new(),
                transitions: Vec::new(),
                multi: Vec::new(),
                cancellations: Vec::new(),
                tfc: None,
            },
        }
    }

    /// Look up an activity.
    pub fn activity(&self, id: &str) -> WfResult<&Activity> {
        self.activities
            .iter()
            .find(|a| a.id == id)
            .ok_or_else(|| WfError::UnknownActivity(id.to_string()))
    }

    /// Activities with a transition into `id`.
    pub fn incoming(&self, id: &str) -> Vec<&ActivityId> {
        self.transitions
            .iter()
            .filter(|t| matches!(&t.to, Target::Activity(a) if a == id))
            .map(|t| &t.from)
            .collect()
    }

    /// Transitions out of `id`.
    pub fn outgoing(&self, id: &str) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.from == id).collect()
    }

    /// The multi-instance annotation for `id`, if any.
    pub fn multi_for(&self, id: &str) -> Option<&MultiInstance> {
        self.multi.iter().find(|m| m.activity == id)
    }

    /// All cancellation regions triggered by the completion of `id`.
    pub fn cancellations_triggered_by(&self, id: &str) -> Vec<&CancelRegion> {
        self.cancellations.iter().filter(|c| c.trigger == id).collect()
    }

    /// Whether `id` lies on a control-flow cycle (can reach itself).
    pub fn on_cycle(&self, id: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        for t in self.outgoing(id) {
            if let Target::Activity(a) = &t.to {
                queue.push_back(a.as_str());
            }
        }
        while let Some(cur) = queue.pop_front() {
            if cur == id {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            for t in self.outgoing(cur) {
                if let Target::Activity(a) = &t.to {
                    queue.push_back(a.as_str());
                }
            }
        }
        false
    }

    /// All activities that can reach `id` through the control-flow graph
    /// (transitive predecessors; excludes `id` itself unless it is on a
    /// cycle through itself).
    pub fn upstream_of(&self, id: &str) -> BTreeSet<ActivityId> {
        let mut seen: BTreeSet<ActivityId> = BTreeSet::new();
        let mut queue: VecDeque<String> =
            self.incoming(id).into_iter().map(|a| a.to_string()).collect();
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            for prev in self.incoming(&cur) {
                queue.push_back(prev.to_string());
            }
        }
        seen
    }

    /// Structural validation: unique ids, known references, reachability of
    /// every activity from the start, and at least one path to End.
    pub fn validate(&self) -> WfResult<()> {
        let mut ids = BTreeSet::new();
        for a in &self.activities {
            if !ids.insert(a.id.as_str()) {
                return Err(WfError::Flow(format!("duplicate activity id '{}'", a.id)));
            }
            if a.participant.is_empty() {
                return Err(WfError::Flow(format!("activity '{}' has no participant", a.id)));
            }
        }
        if !ids.contains(self.start.as_str()) {
            return Err(WfError::UnknownActivity(self.start.clone()));
        }
        let mut reaches_end = false;
        for t in &self.transitions {
            if !ids.contains(t.from.as_str()) {
                return Err(WfError::UnknownActivity(t.from.clone()));
            }
            match &t.to {
                Target::Activity(a) => {
                    if !ids.contains(a.as_str()) {
                        return Err(WfError::UnknownActivity(a.clone()));
                    }
                }
                Target::End => reaches_end = true,
            }
        }
        if !reaches_end {
            return Err(WfError::Flow("no transition reaches End".into()));
        }
        // reachability from start
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([self.start.as_str()]);
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur) {
                continue;
            }
            for t in self.outgoing(cur) {
                if let Target::Activity(a) = &t.to {
                    queue.push_back(a.as_str());
                }
            }
        }
        for a in &self.activities {
            if !seen.contains(a.id.as_str()) {
                return Err(WfError::Flow(format!(
                    "activity '{}' unreachable from start '{}'",
                    a.id, self.start
                )));
            }
        }
        // requests must reference known activities and declared responses
        for a in &self.activities {
            for r in &a.requests {
                let src = self.activity(&r.activity)?;
                if !src.responses.contains(&r.field) {
                    return Err(WfError::Flow(format!(
                        "activity '{}' requests unknown field '{}.{}'",
                        a.id, r.activity, r.field
                    )));
                }
            }
        }
        // conditions must reference known fields
        for t in &self.transitions {
            if let Some(c) = &t.condition {
                let src = self.activity(&c.activity)?;
                if !src.responses.contains(&c.field) {
                    return Err(WfError::Flow(format!(
                        "transition {} -> {:?} conditions on unknown field '{}.{}'",
                        t.from, t.to, c.activity, c.field
                    )));
                }
            }
        }
        // multi-instance annotations: known activity, at most one each,
        // sensible cardinality
        let mut multi_seen = BTreeSet::new();
        for m in &self.multi {
            self.activity(&m.activity)?;
            if !multi_seen.insert(m.activity.as_str()) {
                return Err(WfError::Flow(format!(
                    "activity '{}' has more than one multi-instance annotation",
                    m.activity
                )));
            }
            match &m.cardinality {
                Cardinality::Static(0) => {
                    return Err(WfError::Flow(format!(
                        "multi-instance activity '{}' has cardinality 0",
                        m.activity
                    )));
                }
                Cardinality::Static(_) => {}
                Cardinality::Runtime(r) => {
                    let src = self.activity(&r.activity)?;
                    if !src.responses.contains(&r.field) {
                        return Err(WfError::Flow(format!(
                            "multi-instance activity '{}' reads unknown field '{}.{}'",
                            m.activity, r.activity, r.field
                        )));
                    }
                }
            }
        }
        // cancellation regions: known trigger and region activities,
        // non-empty region, conditions over declared fields
        for c in &self.cancellations {
            self.activity(&c.trigger)?;
            if c.region.is_empty() {
                return Err(WfError::Flow(format!(
                    "cancellation triggered by '{}' has an empty region",
                    c.trigger
                )));
            }
            for a in &c.region {
                self.activity(a)?;
                if a == &c.trigger {
                    return Err(WfError::Flow(format!(
                        "cancellation triggered by '{}' cancels its own trigger",
                        c.trigger
                    )));
                }
            }
            if let Some(cond) = &c.condition {
                let src = self.activity(&cond.activity)?;
                if !src.responses.contains(&cond.field) {
                    return Err(WfError::Flow(format!(
                        "cancellation on '{}' conditions on unknown field '{}.{}'",
                        c.trigger, cond.activity, cond.field
                    )));
                }
            }
        }
        Ok(())
    }

    /// All fields referenced by any transition condition (these must be
    /// readable by whoever evaluates routing — see
    /// `SecurityPolicy::with_tfc_access`).
    pub fn condition_fields(&self) -> BTreeSet<FieldRef> {
        let mut fields: BTreeSet<FieldRef> = self
            .transitions
            .iter()
            .filter_map(|t| t.condition.as_ref())
            .map(|c| FieldRef::new(c.activity.clone(), c.field.clone()))
            .collect();
        for m in &self.multi {
            if let Cardinality::Runtime(r) = &m.cardinality {
                fields.insert(r.clone());
            }
        }
        for c in &self.cancellations {
            if let Some(cond) = &c.condition {
                fields.insert(FieldRef::new(cond.activity.clone(), cond.field.clone()));
            }
        }
        fields
    }

    // -- XML serialization ---------------------------------------------------

    /// Serialize to the `<WorkflowDefinition>` element embedded in documents.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("WorkflowDefinition")
            .attr("name", self.name.clone())
            .attr("designer", self.designer.clone())
            .attr("start", self.start.clone());
        if let Some(tfc) = &self.tfc {
            root.set_attr("tfc", tfc.clone());
        }
        for a in &self.activities {
            let mut el = Element::new("Activity")
                .attr("id", a.id.clone())
                .attr("participant", a.participant.clone());
            match a.join {
                JoinKind::Any => {}
                JoinKind::All => el.set_attr("join", "all"),
                JoinKind::Or => el.set_attr("join", "or"),
            }
            for r in &a.requests {
                el.push_child(
                    Element::new("Request")
                        .attr("activity", r.activity.clone())
                        .attr("field", r.field.clone()),
                );
            }
            for f in &a.responses {
                el.push_child(Element::new("Response").attr("field", f.clone()));
            }
            root.push_child(el);
        }
        for t in &self.transitions {
            let mut el = Element::new("Transition").attr("from", t.from.clone());
            match &t.to {
                Target::Activity(a) => el.set_attr("to", a.clone()),
                Target::End => el.set_attr("to", "#end"),
            }
            if let Some(c) = &t.condition {
                el.push_child(condition_to_xml(c));
            }
            root.push_child(el);
        }
        for m in &self.multi {
            let mut el = Element::new("Multi").attr("activity", m.activity.clone());
            match &m.cardinality {
                Cardinality::Static(k) => el.set_attr("count", k.to_string()),
                Cardinality::Runtime(r) => {
                    el.set_attr("fromActivity", r.activity.clone());
                    el.set_attr("fromField", r.field.clone());
                }
            }
            root.push_child(el);
        }
        for c in &self.cancellations {
            let mut el = Element::new("Cancel").attr("trigger", c.trigger.clone());
            for a in &c.region {
                el.push_child(Element::new("Region").attr("activity", a.clone()));
            }
            if let Some(cond) = &c.condition {
                el.push_child(condition_to_xml(cond));
            }
            root.push_child(el);
        }
        root
    }

    /// Parse back from XML.
    pub fn from_xml(el: &Element) -> WfResult<WorkflowDefinition> {
        if el.name != "WorkflowDefinition" {
            return Err(WfError::Malformed(format!(
                "expected <WorkflowDefinition>, found <{}>",
                el.name
            )));
        }
        let attr = |k: &str| -> WfResult<String> {
            el.get_attr(k)
                .map(str::to_string)
                .ok_or_else(|| WfError::Malformed(format!("WorkflowDefinition missing @{k}")))
        };
        let mut def = WorkflowDefinition {
            name: attr("name")?,
            designer: attr("designer")?,
            start: attr("start")?,
            activities: Vec::new(),
            transitions: Vec::new(),
            multi: Vec::new(),
            cancellations: Vec::new(),
            tfc: el.get_attr("tfc").map(str::to_string),
        };
        for a in el.find_children("Activity") {
            let id = a
                .get_attr("id")
                .ok_or_else(|| WfError::Malformed("Activity missing @id".into()))?;
            let participant = a
                .get_attr("participant")
                .ok_or_else(|| WfError::Malformed("Activity missing @participant".into()))?;
            let mut act = Activity {
                id: id.to_string(),
                participant: participant.to_string(),
                join: match a.get_attr("join") {
                    Some("all") => JoinKind::All,
                    Some("or") => JoinKind::Or,
                    _ => JoinKind::Any,
                },
                requests: Vec::new(),
                responses: Vec::new(),
            };
            for r in a.find_children("Request") {
                act.requests.push(FieldRef::new(
                    r.get_attr("activity").unwrap_or_default(),
                    r.get_attr("field").unwrap_or_default(),
                ));
            }
            for r in a.find_children("Response") {
                act.responses.push(r.get_attr("field").unwrap_or_default().to_string());
            }
            def.activities.push(act);
        }
        for t in el.find_children("Transition") {
            let from = t
                .get_attr("from")
                .ok_or_else(|| WfError::Malformed("Transition missing @from".into()))?;
            let to_attr = t
                .get_attr("to")
                .ok_or_else(|| WfError::Malformed("Transition missing @to".into()))?;
            let to =
                if to_attr == "#end" { Target::End } else { Target::Activity(to_attr.to_string()) };
            let condition = match t.find_child("Condition") {
                Some(c) => Some(condition_from_xml(c)?),
                None => None,
            };
            def.transitions.push(Transition { from: from.to_string(), to, condition });
        }
        for m in el.find_children("Multi") {
            let activity = m
                .get_attr("activity")
                .ok_or_else(|| WfError::Malformed("Multi missing @activity".into()))?;
            let cardinality = if let Some(count) = m.get_attr("count") {
                let k: u32 = count.parse().map_err(|_| {
                    WfError::Malformed(format!("Multi @count '{count}' is not an integer"))
                })?;
                Cardinality::Static(k)
            } else {
                let from = m.get_attr("fromActivity").ok_or_else(|| {
                    WfError::Malformed("Multi missing @count/@fromActivity".into())
                })?;
                let field = m
                    .get_attr("fromField")
                    .ok_or_else(|| WfError::Malformed("Multi missing @fromField".into()))?;
                Cardinality::Runtime(FieldRef::new(from, field))
            };
            def.multi.push(MultiInstance { activity: activity.to_string(), cardinality });
        }
        for c in el.find_children("Cancel") {
            let trigger = c
                .get_attr("trigger")
                .ok_or_else(|| WfError::Malformed("Cancel missing @trigger".into()))?;
            let region = c
                .find_children("Region")
                .map(|r| {
                    r.get_attr("activity")
                        .map(str::to_string)
                        .ok_or_else(|| WfError::Malformed("Region missing @activity".into()))
                })
                .collect::<WfResult<Vec<_>>>()?;
            let condition = match c.find_child("Condition") {
                Some(cond) => Some(condition_from_xml(cond)?),
                None => None,
            };
            def.cancellations.push(CancelRegion {
                trigger: trigger.to_string(),
                condition,
                region,
            });
        }
        Ok(def)
    }
}

impl WorkflowDefinition {
    /// Render the control-flow graph in Graphviz dot format (for
    /// documentation and debugging of process definitions).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
        out.push_str("  start [shape=circle label=\"\" style=filled fillcolor=black width=0.2];\n");
        out.push_str(
            "  end [shape=doublecircle label=\"\" style=filled fillcolor=black width=0.15];\n",
        );
        for a in &self.activities {
            let shape = match a.join {
                JoinKind::All => "box3d",
                JoinKind::Or => "component",
                JoinKind::Any => "box",
            };
            let multi = match self.multi_for(&a.id).map(|m| &m.cardinality) {
                Some(Cardinality::Static(k)) => format!(" ×{k}"),
                Some(Cardinality::Runtime(r)) => format!(" ×{}.{}", r.activity, r.field),
                None => String::new(),
            };
            out.push_str(&format!(
                "  \"{}\" [shape={shape} label=\"{}{multi}\\n({})\"];\n",
                a.id, a.id, a.participant
            ));
        }
        out.push_str(&format!("  start -> \"{}\";\n", self.start));
        for t in &self.transitions {
            let to = match &t.to {
                Target::Activity(a) => format!("\"{a}\""),
                Target::End => "end".to_string(),
            };
            let label = match &t.condition {
                Some(c) => format!(
                    " [label=\"{}.{} {} {}\"]",
                    c.activity,
                    c.field,
                    if c.negate { "!=" } else { "==" },
                    c.equals
                ),
                None => String::new(),
            };
            out.push_str(&format!("  \"{}\" -> {to}{label};\n", t.from));
        }
        for c in &self.cancellations {
            for a in &c.region {
                out.push_str(&format!(
                    "  \"{}\" -> \"{a}\" [style=dashed color=red label=\"cancel\"];\n",
                    c.trigger
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Serialize a [`Condition`] to XML.
pub fn condition_to_xml(c: &Condition) -> Element {
    Element::new("Condition")
        .attr("activity", c.activity.clone())
        .attr("field", c.field.clone())
        .attr("equals", c.equals.clone())
        .attr("negate", if c.negate { "true" } else { "false" })
}

/// Parse a [`Condition`] from XML.
pub fn condition_from_xml(el: &Element) -> WfResult<Condition> {
    let attr = |k: &str| -> WfResult<String> {
        el.get_attr(k)
            .map(str::to_string)
            .ok_or_else(|| WfError::Malformed(format!("Condition missing @{k}")))
    };
    Ok(Condition {
        activity: attr("activity")?,
        field: attr("field")?,
        equals: attr("equals")?,
        negate: el.get_attr("negate") == Some("true"),
    })
}

/// Fluent builder for workflow definitions.
pub struct WorkflowBuilder {
    def: WorkflowDefinition,
}

impl WorkflowBuilder {
    /// Add an activity. The first added activity becomes the start unless
    /// [`WorkflowBuilder::start`] overrides it.
    pub fn activity(mut self, a: Activity) -> Self {
        if self.def.start.is_empty() {
            self.def.start = a.id.clone();
        }
        self.def.activities.push(a);
        self
    }

    /// Shorthand: activity with participant and response fields, no
    /// requests, Any-join.
    pub fn simple_activity(
        self,
        id: impl Into<String>,
        participant: impl Into<String>,
        responses: &[&str],
    ) -> Self {
        self.activity(Activity {
            id: id.into(),
            participant: participant.into(),
            join: JoinKind::Any,
            requests: Vec::new(),
            responses: responses.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Set the start activity explicitly.
    pub fn start(mut self, id: impl Into<String>) -> Self {
        self.def.start = id.into();
        self
    }

    /// Unconditional transition between activities.
    pub fn flow(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::Activity(to.into()),
            condition: None,
        });
        self
    }

    /// Conditional transition.
    pub fn flow_if(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        condition: Condition,
    ) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::Activity(to.into()),
            condition: Some(condition),
        });
        self
    }

    /// Transition to the end of the workflow.
    pub fn flow_end(mut self, from: impl Into<String>) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::End,
            condition: None,
        });
        self
    }

    /// Conditional transition to the end.
    pub fn flow_end_if(mut self, from: impl Into<String>, condition: Condition) -> Self {
        self.def.transitions.push(Transition {
            from: from.into(),
            to: Target::End,
            condition: Some(condition),
        });
        self
    }

    /// Declare an activity as multi-instance with a fixed count.
    pub fn multi_static(mut self, activity: impl Into<String>, count: u32) -> Self {
        self.def.multi.push(MultiInstance {
            activity: activity.into(),
            cardinality: Cardinality::Static(count),
        });
        self
    }

    /// Declare an activity as multi-instance with the count read at runtime
    /// from `from_activity.field`.
    pub fn multi_runtime(
        mut self,
        activity: impl Into<String>,
        from_activity: impl Into<String>,
        field: impl Into<String>,
    ) -> Self {
        self.def.multi.push(MultiInstance {
            activity: activity.into(),
            cardinality: Cardinality::Runtime(FieldRef::new(from_activity, field)),
        });
        self
    }

    /// Cancel the pending work of `region` whenever `trigger` completes.
    pub fn cancel_on(mut self, trigger: impl Into<String>, region: &[&str]) -> Self {
        self.def.cancellations.push(CancelRegion {
            trigger: trigger.into(),
            condition: None,
            region: region.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Cancel the pending work of `region` when `trigger` completes and
    /// `condition` holds.
    pub fn cancel_on_if(
        mut self,
        trigger: impl Into<String>,
        condition: Condition,
        region: &[&str],
    ) -> Self {
        self.def.cancellations.push(CancelRegion {
            trigger: trigger.into(),
            condition: Some(condition),
            region: region.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Use the advanced operational model with the given TFC identity name.
    pub fn with_tfc(mut self, tfc: impl Into<String>) -> Self {
        self.def.tfc = Some(tfc.into());
        self
    }

    /// Validate and return the definition.
    pub fn build(self) -> WfResult<WorkflowDefinition> {
        self.def.validate()?;
        Ok(self.def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> WorkflowDefinition {
        WorkflowDefinition::builder("linear", "designer")
            .simple_activity("A1", "peter", &["x"])
            .simple_activity("A2", "amy", &["y"])
            .flow("A1", "A2")
            .flow_end("A2")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_sets_start() {
        let def = linear();
        assert_eq!(def.start, "A1");
        assert_eq!(def.activities.len(), 2);
    }

    #[test]
    fn incoming_outgoing() {
        let def = linear();
        assert_eq!(def.incoming("A2"), vec!["A1"]);
        assert!(def.incoming("A1").is_empty());
        assert_eq!(def.outgoing("A1").len(), 1);
        assert_eq!(def.outgoing("A2").len(), 1);
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("A", "q", &[])
            .flow_end("A")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(_)));
    }

    #[test]
    fn validate_rejects_unknown_transition_target() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .flow("A", "GHOST")
            .flow_end("A")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::UnknownActivity(a) if a == "GHOST"));
    }

    #[test]
    fn validate_rejects_unreachable_activity() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("ISLAND", "q", &[])
            .flow_end("A")
            .flow_end("ISLAND")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("unreachable")));
    }

    #[test]
    fn validate_requires_end() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &[])
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("End")));
    }

    #[test]
    fn validate_rejects_unknown_request_field() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &["x"])
            .activity(Activity {
                id: "B".into(),
                participant: "q".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "nope")],
                responses: vec![],
            })
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("nope")));
    }

    #[test]
    fn validate_rejects_condition_on_unknown_field() {
        let err = WorkflowDefinition::builder("bad", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "ghost", "1"))
            .flow_end("B")
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("ghost")));
    }

    #[test]
    fn condition_matches() {
        let c = Condition::field_equals("A", "decision", "approve");
        assert!(c.matches("approve"));
        assert!(!c.matches("reject"));
        let n = Condition::field_not_equals("A", "decision", "approve");
        assert!(!n.matches("approve"));
        assert!(n.matches("reject"));
    }

    #[test]
    fn xml_roundtrip_rich_workflow() {
        let def = WorkflowDefinition::builder("rich", "designer")
            .simple_activity("A", "p1", &["decision", "amount"])
            .activity(Activity {
                id: "B1".into(),
                participant: "p2".into(),
                join: JoinKind::Any,
                requests: vec![FieldRef::new("A", "amount")],
                responses: vec!["review".into()],
            })
            .simple_activity("B2", "p3", &["review"])
            .activity(Activity {
                id: "C".into(),
                participant: "p4".into(),
                join: JoinKind::All,
                requests: vec![],
                responses: vec!["final".into()],
            })
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_if("C", "A", Condition::field_equals("C", "final", "reject"))
            .flow_end_if("C", Condition::field_not_equals("C", "final", "reject"))
            .with_tfc("TFC")
            .build()
            .unwrap();
        let xml = def.to_xml();
        let parsed = WorkflowDefinition::from_xml(&xml).unwrap();
        assert_eq!(parsed, def);
        // And survives the wire.
        let wire = dra_xml::writer::to_string(&xml);
        let reparsed = WorkflowDefinition::from_xml(&dra_xml::parse(&wire).unwrap()).unwrap();
        assert_eq!(reparsed, def);
    }

    #[test]
    fn dot_export_mentions_everything() {
        let def = linear();
        let dot = def.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"A1\""));
        assert!(dot.contains("(peter)"));
        assert!(dot.contains("start -> \"A1\""));
        assert!(dot.contains("-> end"));
    }

    #[test]
    fn dot_export_labels_conditions() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "go"))
            .flow_end_if("A", Condition::field_not_equals("A", "x", "go"))
            .flow_end("B")
            .build()
            .unwrap();
        let dot = def.to_dot();
        assert!(dot.contains("A.x == go"));
        assert!(dot.contains("A.x != go"));
    }

    fn patterned() -> WorkflowDefinition {
        WorkflowDefinition::builder("patterned", "designer")
            .simple_activity("A", "p1", &["n", "mode"])
            .activity(Activity {
                id: "B".into(),
                participant: "p2".into(),
                join: JoinKind::Any,
                requests: vec![],
                responses: vec!["part".into()],
            })
            .simple_activity("C", "p3", &["alt"])
            .activity(Activity {
                id: "J".into(),
                participant: "p4".into(),
                join: JoinKind::Or,
                requests: vec![],
                responses: vec!["merged".into()],
            })
            .flow("A", "B")
            .flow_if("A", "C", Condition::field_equals("A", "mode", "both"))
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .multi_runtime("B", "A", "n")
            .cancel_on_if("B", Condition::field_equals("A", "mode", "solo"), &["C"])
            .build()
            .unwrap()
    }

    #[test]
    fn xml_roundtrip_patterned_workflow() {
        let def = patterned();
        let xml = def.to_xml();
        let parsed = WorkflowDefinition::from_xml(&xml).unwrap();
        assert_eq!(parsed, def);
        let wire = dra_xml::writer::to_string(&xml);
        let reparsed = WorkflowDefinition::from_xml(&dra_xml::parse(&wire).unwrap()).unwrap();
        assert_eq!(reparsed, def);
    }

    #[test]
    fn xml_roundtrip_static_multi() {
        let def = WorkflowDefinition::builder("m", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow("A", "B")
            .flow_end("B")
            .multi_static("B", 3)
            .build()
            .unwrap();
        let parsed = WorkflowDefinition::from_xml(&def.to_xml()).unwrap();
        assert_eq!(parsed, def);
        assert_eq!(parsed.multi_for("B").map(|m| &m.cardinality), Some(&Cardinality::Static(3)));
    }

    #[test]
    fn validate_rejects_zero_cardinality() {
        let err = WorkflowDefinition::builder("m", "d")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .multi_static("A", 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("cardinality 0")));
    }

    #[test]
    fn validate_rejects_duplicate_multi() {
        let err = WorkflowDefinition::builder("m", "d")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .multi_static("A", 2)
            .multi_static("A", 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("more than one")));
    }

    #[test]
    fn validate_rejects_empty_cancel_region() {
        let err = WorkflowDefinition::builder("c", "d")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .cancel_on("A", &[])
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("empty region")));
    }

    #[test]
    fn validate_rejects_self_cancelling_trigger() {
        let err = WorkflowDefinition::builder("c", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("B", "q", &[])
            .flow("A", "B")
            .flow_end("B")
            .cancel_on("A", &["A"])
            .build()
            .unwrap_err();
        assert!(matches!(err, WfError::Flow(m) if m.contains("its own trigger")));
    }

    #[test]
    fn cycle_and_upstream_queries() {
        let def = WorkflowDefinition::builder("loopy", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &["y"])
            .flow("A", "B")
            .flow_if("B", "A", Condition::field_equals("B", "y", "again"))
            .flow_end_if("B", Condition::field_not_equals("B", "y", "again"))
            .build()
            .unwrap();
        assert!(def.on_cycle("A"));
        assert!(def.on_cycle("B"));
        let up = def.upstream_of("B");
        assert!(up.contains("A") && up.contains("B"));
        let lin = linear();
        assert!(!lin.on_cycle("A1"));
        assert_eq!(lin.upstream_of("A2").into_iter().collect::<Vec<_>>(), vec!["A1"]);
    }

    #[test]
    fn condition_fields_include_pattern_sources() {
        let def = patterned();
        let fields = def.condition_fields();
        assert!(fields.contains(&FieldRef::new("A", "n")), "runtime cardinality source");
        assert!(fields.contains(&FieldRef::new("A", "mode")), "cancel condition source");
    }

    #[test]
    fn dot_marks_patterns() {
        let def = patterned();
        let dot = def.to_dot();
        assert!(dot.contains("shape=component"), "or-join shape");
        assert!(dot.contains("×A.n"), "multi-instance label");
        assert!(dot.contains("style=dashed color=red"), "cancel edge");
    }

    #[test]
    fn condition_fields_collected() {
        let def = WorkflowDefinition::builder("w", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow_if("A", "B", Condition::field_equals("A", "x", "1"))
            .flow_end_if("A", Condition::field_not_equals("A", "x", "1"))
            .flow_end("B")
            .build()
            .unwrap();
        let fields = def.condition_fields();
        assert_eq!(fields.len(), 1);
        assert!(fields.contains(&FieldRef::new("A", "x")));
    }
}
