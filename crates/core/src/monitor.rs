//! Workflow monitoring (§2.2, §3): tracking individual process instances so
//! "information on their state can be easily seen and statistics on the
//! performance of one or more processes provided".
//!
//! Monitoring works on the document alone — no engine holds the state. The
//! advanced model's TFC timestamps give finish times; the basic model still
//! exposes execution order and participation.

use crate::document::{CerKey, DraDocument};
use crate::error::WfResult;
use crate::identity::Directory;
use crate::model::{Target, WorkflowDefinition};
use std::collections::BTreeMap;

/// One executed activity iteration, as seen by a monitor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutedEntry {
    /// Activity + iteration.
    pub key: CerKey,
    /// Who executed it.
    pub participant: String,
    /// TFC finish timestamp in ms (advanced model only).
    pub timestamp: Option<u64>,
    /// True when the CER is still awaiting TFC finalization.
    pub intermediate: bool,
}

/// A point-in-time view of one process instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessStatus {
    /// Unique process id.
    pub process_id: String,
    /// Workflow name.
    pub workflow: String,
    /// Executions in document order.
    pub executed: Vec<ExecutedEntry>,
}

impl ProcessStatus {
    /// Extract the status of a document. Does not verify signatures — run
    /// a [`crate::verify::Verifier`] first when trust matters.
    pub fn from_document(doc: &DraDocument) -> WfResult<ProcessStatus> {
        let def = doc.workflow_definition()?;
        let executed = doc
            .cers()?
            .iter()
            .map(|c| ExecutedEntry {
                key: c.key.clone(),
                participant: c.participant.clone(),
                timestamp: c.timestamp_millis(),
                intermediate: c.tfc_sealed().is_some() && c.result().is_none(),
            })
            .collect();
        Ok(ProcessStatus { process_id: doc.process_id()?, workflow: def.name, executed })
    }

    /// Extract the status of a document **after** verifying every embedded
    /// signature against `directory` — the convenience the
    /// [`ProcessStatus::from_document`] caveat asks for. Any tampered CER
    /// (forged participant, altered result, edited timestamp) fails
    /// verification, so the returned status is backed by the full cascade.
    pub fn verified_status(doc: &DraDocument, directory: &Directory) -> WfResult<ProcessStatus> {
        crate::verify::Verifier::new(directory).run(doc)?;
        Self::from_document(doc)
    }

    /// Number of executed activity iterations.
    pub fn steps(&self) -> usize {
        self.executed.len()
    }

    /// Latest execution, if any.
    pub fn last(&self) -> Option<&ExecutedEntry> {
        self.executed.last()
    }

    /// Execution counts per activity (loop iterations show up as counts >1).
    pub fn counts_per_activity(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in &self.executed {
            *out.entry(e.key.activity.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Total elapsed time between first and last TFC timestamps, when both
    /// exist (advanced model).
    pub fn elapsed_millis(&self) -> Option<u64> {
        let times: Vec<u64> = self.executed.iter().filter_map(|e| e.timestamp).collect();
        match (times.iter().min(), times.iter().max()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    /// Check the document-recorded end-to-end latency against an SLO.
    ///
    /// This is the *document-time* complement of the cloud crate's online
    /// `HealthMonitor`: the monitor judges virtual wall time while the run
    /// executes, this judges the TFC-witnessed timestamps the signed
    /// document carries after the fact — so an auditor can hold a
    /// completed document against its SLO without any trace at all.
    /// `elapsed_ms` is `None` on the basic model (no TFC timestamps),
    /// which never counts as a breach: absence of evidence stays
    /// inconclusive, matching the advisory-alert philosophy.
    pub fn check_slo(&self, slo_ms: u64) -> SloReport {
        let elapsed_ms = self.elapsed_millis();
        SloReport { slo_ms, elapsed_ms, breached: elapsed_ms.is_some_and(|e| e > slo_ms) }
    }

    /// Human-readable audit trail, one line per execution.
    pub fn audit_trail(&self) -> String {
        let mut out = format!("process {} ({})\n", self.process_id, self.workflow);
        for e in &self.executed {
            out.push_str(&format!(
                "  {:<8} by {:<12} {}{}\n",
                e.key.to_string(),
                e.participant,
                e.timestamp.map(|t| format!("t={t}ms")).unwrap_or_else(|| "t=?".into()),
                if e.intermediate { " [awaiting TFC]" } else { "" },
            ));
        }
        out
    }
}

/// Result of holding a completed document against its SLO
/// ([`ProcessStatus::check_slo`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// The declared SLO, in TFC-timestamp milliseconds.
    pub slo_ms: u64,
    /// Document-witnessed end-to-end latency (`None` without TFC
    /// timestamps — basic model).
    pub elapsed_ms: Option<u64>,
    /// True only when witnessed latency exceeds the SLO.
    pub breached: bool,
}

/// Activities of `def` that have never executed in `doc` (coarse progress
/// indicator for dashboards).
pub fn unexecuted_activities(doc: &DraDocument, def: &WorkflowDefinition) -> WfResult<Vec<String>> {
    let mut out = Vec::new();
    for a in &def.activities {
        if doc.latest_iter(&a.id)?.is_none() {
            out.push(a.id.clone());
        }
    }
    Ok(out)
}

/// True when some executed activity has a fired transition to End and no
/// activity is pending — a heuristic completeness check usable without keys
/// (conditions that cannot be evaluated are treated as unknown and ignored).
pub fn appears_complete(doc: &DraDocument, def: &WorkflowDefinition) -> WfResult<bool> {
    // A document is definitely not complete if nothing executed.
    let cers = doc.cers()?;
    let Some(last) = cers.last() else { return Ok(false) };
    // If the last executed activity has an unconditional transition to End,
    // the process is complete.
    Ok(def
        .outgoing(&last.key.activity)
        .iter()
        .any(|t| t.condition.is_none() && matches!(t.to, Target::End)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DraDocument;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;
    use dra_xml::Element;

    fn fixture_doc() -> (DraDocument, WorkflowDefinition) {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("monitored", "designer")
            .simple_activity("A", "p", &[])
            .simple_activity("B", "q", &[])
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap();
        let mut doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-m")
                .unwrap();
        doc.push_cer(
            Element::new("CER")
                .attr("activity", "A")
                .attr("iter", "0")
                .attr("participant", "p")
                .attr("preds", "Def")
                .child(Element::new("Result"))
                .child(Element::new("Timestamp").attr("time", "100").attr("by", "TFC")),
        )
        .unwrap();
        doc.push_cer(
            Element::new("CER")
                .attr("activity", "A")
                .attr("iter", "1")
                .attr("participant", "p")
                .attr("preds", "Def")
                .child(Element::new("Result"))
                .child(Element::new("Timestamp").attr("time", "250").attr("by", "TFC")),
        )
        .unwrap();
        (doc, def)
    }

    #[test]
    fn status_extraction() {
        let (doc, _) = fixture_doc();
        let s = ProcessStatus::from_document(&doc).unwrap();
        assert_eq!(s.process_id, "pid-m");
        assert_eq!(s.workflow, "monitored");
        assert_eq!(s.steps(), 2);
        assert_eq!(s.last().unwrap().key, CerKey::new("A", 1));
        assert_eq!(s.last().unwrap().timestamp, Some(250));
    }

    #[test]
    fn counts_and_elapsed() {
        let (doc, _) = fixture_doc();
        let s = ProcessStatus::from_document(&doc).unwrap();
        assert_eq!(s.counts_per_activity()["A"], 2);
        assert_eq!(s.elapsed_millis(), Some(150));
    }

    #[test]
    fn slo_check_uses_witnessed_timestamps() {
        let (doc, _) = fixture_doc();
        let s = ProcessStatus::from_document(&doc).unwrap();
        // 150 ms elapsed: a 150 ms SLO holds (breach is strict), 149 breaks
        assert_eq!(
            s.check_slo(150),
            SloReport { slo_ms: 150, elapsed_ms: Some(150), breached: false }
        );
        assert!(s.check_slo(149).breached);
    }

    #[test]
    fn slo_check_is_inconclusive_without_timestamps() {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("basic", "designer")
            .simple_activity("A", "p", &["f"])
            .flow_end("A")
            .build()
            .unwrap();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-b")
                .unwrap();
        let s = ProcessStatus::from_document(&doc).unwrap();
        let report = s.check_slo(1);
        assert_eq!(report.elapsed_ms, None);
        assert!(!report.breached, "no witnessed time never counts as a breach");
    }

    #[test]
    fn unexecuted() {
        let (doc, def) = fixture_doc();
        assert_eq!(unexecuted_activities(&doc, &def).unwrap(), vec!["B"]);
    }

    #[test]
    fn completeness_heuristic() {
        let (mut doc, def) = fixture_doc();
        assert!(!appears_complete(&doc, &def).unwrap());
        doc.push_cer(
            Element::new("CER")
                .attr("activity", "B")
                .attr("iter", "0")
                .attr("participant", "q")
                .attr("preds", "A#1")
                .child(Element::new("Result")),
        )
        .unwrap();
        assert!(appears_complete(&doc, &def).unwrap());
    }

    #[test]
    fn audit_trail_mentions_everything() {
        let (doc, _) = fixture_doc();
        let s = ProcessStatus::from_document(&doc).unwrap();
        let trail = s.audit_trail();
        assert!(trail.contains("pid-m"));
        assert!(trail.contains("A#0"));
        assert!(trail.contains("A#1"));
        assert!(trail.contains("t=250ms"));
    }

    #[test]
    fn verified_status_rejects_tampered_cer() {
        use crate::aea::Aea;
        let designer = Credentials::from_seed("designer", "d");
        let peter = Credentials::from_seed("peter", "p");
        let def = WorkflowDefinition::builder("audited", "designer")
            .simple_activity("A", "peter", &["note"])
            .flow_end("A")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &peter]);
        let initial =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-v")
                .unwrap();
        let aea = Aea::new(peter, dir.clone());
        let recv = aea.receive(initial.to_xml_string(), "A").unwrap();
        let done = aea.complete(&recv, &[("note".into(), "genuine".into())]).unwrap();

        // the honest document passes and reports the execution
        let honest = DraDocument::parse(&done.document.to_xml_string()).unwrap();
        let status = ProcessStatus::verified_status(&honest, &dir).unwrap();
        assert_eq!(status.steps(), 1);
        assert_eq!(status.executed[0].participant, "peter");

        // a CER with a forged participant must be rejected, even though the
        // unverified extractor happily reports it
        let forged = done
            .document
            .to_xml_string()
            .replace("participant=\"peter\"", "participant=\"mallory\"");
        let doc = DraDocument::parse(&forged).unwrap();
        assert_eq!(ProcessStatus::from_document(&doc).unwrap().executed[0].participant, "mallory");
        assert!(ProcessStatus::verified_status(&doc, &dir).is_err());
    }

    #[test]
    fn empty_document_status() {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .build()
            .unwrap();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "x")
                .unwrap();
        let s = ProcessStatus::from_document(&doc).unwrap();
        assert_eq!(s.steps(), 0);
        assert!(s.last().is_none());
        assert_eq!(s.elapsed_millis(), None);
        assert!(!appears_complete(&doc, &def).unwrap());
    }
}
