//! The unified ingest entry point for document hand-offs.
//!
//! Historically every receiver exposed a pair of APIs — `receive(&str)`
//! re-parsing wire XML from scratch and `receive_sealed(SealedDocument)`
//! taking the zero-copy fast path — and callers could pick the slow (or,
//! worse, the trust-dropping) path by accident. [`Inbound`] collapses the
//! pair: `Aea::receive` and `TfcServer::receive` now take
//! `impl Into<Inbound>`, so a `&str`, an owned `String`, a parsed
//! [`DraDocument`] or a [`SealedDocument`] (with or without a trust mark)
//! all land on the same verified entry point. Whatever the caller holds is
//! always the cheapest admissible representation: wire bytes are parsed
//! once and kept as the seal's serialization, parsed documents are sealed
//! without a serialization round-trip, and sealed hand-offs keep their
//! memoized bytes and [`TrustMark`](crate::sealed::TrustMark).

use crate::document::DraDocument;
use crate::error::WfResult;
use crate::sealed::SealedDocument;

/// A document on its way into a receiver ([`crate::aea::Aea`],
/// [`crate::tfc::TfcServer`], a portal) — either raw wire bytes or an
/// already-parsed sealed form. Build one via the `From` impls; receivers
/// accept `impl Into<Inbound>` so call sites never name this type.
#[derive(Clone, Debug)]
pub enum Inbound {
    /// Wire XML as received from the network; parsed (and kept as the
    /// seal's serialization) at the receiver's boundary.
    Wire(String),
    /// A sealed document handed off in-process — zero-copy, trust mark and
    /// memoized bytes included.
    Sealed(SealedDocument),
}

impl Inbound {
    /// Resolve to the sealed form, parsing wire bytes if necessary.
    pub fn into_sealed(self) -> WfResult<SealedDocument> {
        match self {
            Inbound::Wire(xml) => SealedDocument::from_wire(&xml),
            Inbound::Sealed(sealed) => Ok(sealed),
        }
    }
}

impl From<&str> for Inbound {
    fn from(xml: &str) -> Inbound {
        Inbound::Wire(xml.to_string())
    }
}

impl From<&String> for Inbound {
    fn from(xml: &String) -> Inbound {
        Inbound::Wire(xml.clone())
    }
}

impl From<String> for Inbound {
    fn from(xml: String) -> Inbound {
        Inbound::Wire(xml)
    }
}

impl From<SealedDocument> for Inbound {
    fn from(sealed: SealedDocument) -> Inbound {
        Inbound::Sealed(sealed)
    }
}

impl From<&SealedDocument> for Inbound {
    fn from(sealed: &SealedDocument) -> Inbound {
        Inbound::Sealed(sealed.clone())
    }
}

impl From<DraDocument> for Inbound {
    fn from(doc: DraDocument) -> Inbound {
        Inbound::Sealed(SealedDocument::new(doc))
    }
}

impl From<&DraDocument> for Inbound {
    fn from(doc: &DraDocument) -> Inbound {
        Inbound::Sealed(SealedDocument::new(doc.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;
    use crate::sealed::TrustMark;

    fn doc() -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "peter", &["x"])
            .flow_end("A")
            .build()
            .unwrap();
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid")
            .unwrap()
    }

    #[test]
    fn wire_and_parsed_forms_converge() {
        let d = doc();
        let xml = d.to_xml_string();
        let from_str: Inbound = xml.as_str().into();
        let from_doc: Inbound = d.clone().into();
        let a = from_str.into_sealed().unwrap();
        let b = from_doc.into_sealed().unwrap();
        assert_eq!(a.process_id().unwrap(), b.process_id().unwrap());
        assert_eq!(*a.wire(), *b.wire());
    }

    #[test]
    fn wire_form_keeps_received_bytes() {
        let xml = doc().to_xml_string();
        let sealed = Inbound::from(&xml).into_sealed().unwrap();
        assert_eq!(*sealed.wire(), xml, "received bytes become the seal's serialization");
    }

    #[test]
    fn sealed_form_keeps_trust() {
        let d = doc();
        let mark = TrustMark {
            process_id: "pid".into(),
            verified_cers: 0,
            prefix_digest: [7; 32],
            signatures_verified: 1,
        };
        let sealed = SealedDocument::with_trust(d, mark.clone());
        let roundtrip = Inbound::from(sealed).into_sealed().unwrap();
        assert_eq!(roundtrip.trust(), Some(&mark), "trust mark survives the unified ingest");
    }

    #[test]
    fn malformed_wire_rejected_at_the_boundary() {
        assert!(Inbound::from("<not a document/>").into_sealed().is_err());
    }
}
