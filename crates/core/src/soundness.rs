//! Design-time soundness analysis of a workflow definition.
//!
//! Builds a Petri-net-style reachability graph from the signed definition
//! (tokens live on control-flow edges; activities are transitions) and
//! rejects models that can deadlock, leave an activity dead, accumulate
//! unbounded tokens on a join, or cancel a region another branch still
//! depends on — *before* the process is admitted to the cloud, with a
//! precise diagnostic naming the offending construct.
//!
//! The firing rules mirror the operational semantics exactly:
//!
//! * **Any-join** — one token on any incoming edge enables the activity;
//!   firing consumes that token (each delivery is a new iteration).
//! * **All-join** — enabled only with a token on *every* incoming edge;
//!   firing consumes one from each (the branch documents are merged).
//! * **Or-join** (synchronizing merge) — enabled when at least one incoming
//!   edge is marked and every unmarked incoming edge is *dead*: no token
//!   anywhere in the marking can still reach it. Firing consumes one token
//!   from each marked incoming edge.
//! * **Routing** — all outgoing transitions whose condition holds fire
//!   simultaneously. Condition valuations are enumerated per firing: the
//!   guarded fields of a decision each take every constant compared against
//!   plus one fresh "other" value, so complementary guards (`== v` / `!= v`)
//!   stay mutually exclusive and never produce the impossible both-true or
//!   both-false worlds.
//! * **Cancellation** — when a trigger fires (under the same valuation),
//!   every token on an incoming edge of a region member is removed: pending
//!   work is withdrawn, completed work is untouched.
//!
//! Multi-instance activities expand in place (the extra instances are a
//! self-loop of the same transition), so they do not change reachability —
//! but they, OR-joins, and cancellation regions are barred from
//! control-flow cycles, where iteration counts become ambiguous and the
//! synchronizing merge turns into the classic vicious circle.

use crate::error::{WfError, WfResult};
use crate::model::{ActivityId, Condition, JoinKind, Target, WorkflowDefinition};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Hard cap on distinct markings explored before the analysis gives up and
/// declares the definition unsound by state-space explosion.
pub const MAX_STATES: usize = 50_000;

/// Hard cap on tokens per edge; exceeding it means a join or loop
/// accumulates work without bound.
pub const MAX_TOKENS_PER_EDGE: u8 = 4;

/// A soundness violation, naming the offending construct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoundnessError {
    /// A reachable marking has pending work but no activity can ever fire.
    Deadlock {
        /// Activities with work delivered that will never execute.
        waiting: Vec<ActivityId>,
    },
    /// The activity can never fire in any reachable execution (typically an
    /// AND-join whose branches are never simultaneously live).
    DeadActivity(ActivityId),
    /// Tokens accumulate without bound on a control-flow edge.
    Unbounded {
        /// Source of the edge (`"#start"` for the virtual start edge).
        from: String,
        /// The activity whose input accumulates.
        to: ActivityId,
    },
    /// A cancellation region removes a branch an AND-join outside the
    /// region still waits for: the join would starve forever.
    CancellationOrphans {
        /// The cancelling trigger.
        trigger: ActivityId,
        /// The AND-join left waiting.
        join: ActivityId,
        /// The cancelled predecessor branch.
        branch: ActivityId,
    },
    /// A multi-instance activity sits on a control-flow cycle, making the
    /// instance count ambiguous with loop iterations.
    MultiInstanceOnCycle(ActivityId),
    /// An OR-join sits on a control-flow cycle (the synchronizing merge's
    /// "can a branch still deliver?" question becomes circular).
    OrJoinOnCycle(ActivityId),
    /// A cancellation trigger or region member sits on a control-flow
    /// cycle, making "work pending in the region" ambiguous across
    /// iterations.
    CancellationOnCycle {
        /// The trigger of the offending region.
        trigger: ActivityId,
        /// The on-cycle trigger or member.
        member: ActivityId,
    },
    /// The reachability graph exceeded [`MAX_STATES`] distinct markings.
    StateSpaceExceeded {
        /// Markings explored before giving up.
        states: usize,
    },
    /// The definition failed structural validation before analysis began.
    Invalid(String),
}

impl std::fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoundnessError::Deadlock { waiting } => {
                write!(f, "deadlock: work delivered to [{}] can never execute", waiting.join(", "))
            }
            SoundnessError::DeadActivity(a) => {
                write!(f, "dead activity '{a}': no reachable execution ever fires it")
            }
            SoundnessError::Unbounded { from, to } => {
                write!(f, "unbounded accumulation on edge {from} -> {to}")
            }
            SoundnessError::CancellationOrphans { trigger, join, branch } => {
                write!(
                    f,
                    "cancellation by '{trigger}' orphans AND-join '{join}': branch '{branch}' is cancelled but the join still waits for it"
                )
            }
            SoundnessError::MultiInstanceOnCycle(a) => {
                write!(f, "multi-instance activity '{a}' lies on a control-flow cycle")
            }
            SoundnessError::OrJoinOnCycle(a) => {
                write!(f, "OR-join '{a}' lies on a control-flow cycle")
            }
            SoundnessError::CancellationOnCycle { trigger, member } => {
                write!(
                    f,
                    "cancellation region of '{trigger}' touches '{member}', which lies on a control-flow cycle"
                )
            }
            SoundnessError::StateSpaceExceeded { states } => {
                write!(f, "state space exceeded {states} markings; definition too wild to certify")
            }
            SoundnessError::Invalid(m) => write!(f, "structurally invalid definition: {m}"),
        }
    }
}

impl std::error::Error for SoundnessError {}

impl From<SoundnessError> for WfError {
    fn from(e: SoundnessError) -> WfError {
        WfError::Unsound(e.to_string())
    }
}

/// Statistics from a successful soundness analysis. All counts are
/// deterministic functions of the definition, so they double as
/// regression-gate metrics.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SoundnessReport {
    /// Distinct markings explored.
    pub states_explored: usize,
    /// Activities that fired in at least one execution (== all of them).
    pub activities_fired: usize,
    /// Terminal markings reached (all of them empty).
    pub terminals: usize,
}

/// One control-flow edge place. Index 0 is the virtual start edge.
#[derive(Clone, Debug)]
struct Place {
    from: String,
    to: ActivityId,
}

struct Net<'d> {
    places: Vec<Place>,
    /// in_edges[activity] = indices into `places`
    in_edges: BTreeMap<&'d str, Vec<usize>>,
    /// reach[a] = activities reachable from a (excluding a unless cyclic)
    reach: BTreeMap<&'d str, BTreeSet<&'d str>>,
}

impl<'d> Net<'d> {
    fn build(def: &'d WorkflowDefinition) -> Net<'d> {
        let mut places = vec![Place { from: "#start".into(), to: def.start.clone() }];
        for t in &def.transitions {
            if let Target::Activity(a) = &t.to {
                places.push(Place { from: t.from.clone(), to: a.clone() });
            }
        }
        let mut in_edges: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for a in &def.activities {
            let mut edges = Vec::new();
            for (i, p) in places.iter().enumerate() {
                if p.to == a.id {
                    edges.push(i);
                }
            }
            in_edges.insert(a.id.as_str(), edges);
        }
        let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for a in &def.activities {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut queue: VecDeque<&str> = VecDeque::new();
            for t in def.outgoing(&a.id) {
                if let Target::Activity(n) = &t.to {
                    queue.push_back(n.as_str());
                }
            }
            while let Some(cur) = queue.pop_front() {
                if !seen.insert(cur) {
                    continue;
                }
                for t in def.outgoing(cur) {
                    if let Target::Activity(n) = &t.to {
                        queue.push_back(n.as_str());
                    }
                }
            }
            reach.insert(a.id.as_str(), seen);
        }
        Net { places, in_edges, reach }
    }

    /// Can any marked place still deliver a token to place `target`?
    fn place_live(&self, marking: &[u8], target: usize) -> bool {
        let dest_src = self.places[target].from.as_str();
        for (i, &count) in marking.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // A token on edge (u -> v) will fire v eventually (or not), and
            // from v may travel to dest_src and fire it, producing a token
            // on the target edge. Conservatively: live if v == dest_src or
            // v can reach dest_src.
            let v = self.places[i].to.as_str();
            if v == dest_src || self.reach.get(v).is_some_and(|r| r.contains(dest_src)) {
                return true;
            }
        }
        false
    }
}

/// The truth assignment of one decision: for every `(activity, field)`
/// consulted by the firing activity's outgoing guards or cancellations, a
/// concrete value index. `usize::MAX` encodes the fresh "other" value.
type Valuation = BTreeMap<(String, String), String>;

/// Enumerate consistent valuations over the given conditions: each guarded
/// field takes every constant it is compared against plus `"#other"`.
fn valuations(conds: &[&Condition]) -> Vec<Valuation> {
    let mut domains: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for c in conds {
        domains.entry((c.activity.clone(), c.field.clone())).or_default().insert(c.equals.clone());
    }
    let mut worlds: Vec<Valuation> = vec![BTreeMap::new()];
    for (key, constants) in &domains {
        let mut next = Vec::new();
        for world in &worlds {
            for value in constants.iter().chain(std::iter::once(&"#other".to_string())) {
                let mut w = world.clone();
                w.insert(key.clone(), value.clone());
                next.push(w);
            }
        }
        worlds = next;
    }
    worlds
}

fn condition_holds(c: &Condition, world: &Valuation) -> bool {
    match world.get(&(c.activity.clone(), c.field.clone())) {
        Some(v) => c.matches(v),
        None => true, // unconstrained field: treat as matching
    }
}

/// Run the full soundness analysis. `Ok` carries deterministic exploration
/// statistics; `Err` is the first violation found, with structural checks
/// (cycle interactions, orphaning cancellations) reported before the
/// reachability search runs.
pub fn check_soundness(def: &WorkflowDefinition) -> Result<SoundnessReport, SoundnessError> {
    def.validate().map_err(|e| SoundnessError::Invalid(e.to_string()))?;

    // -- structural rules ----------------------------------------------------
    for m in &def.multi {
        if def.on_cycle(&m.activity) {
            return Err(SoundnessError::MultiInstanceOnCycle(m.activity.clone()));
        }
    }
    for a in &def.activities {
        if a.join == JoinKind::Or && def.on_cycle(&a.id) {
            return Err(SoundnessError::OrJoinOnCycle(a.id.clone()));
        }
    }
    for c in &def.cancellations {
        if def.on_cycle(&c.trigger) {
            return Err(SoundnessError::CancellationOnCycle {
                trigger: c.trigger.clone(),
                member: c.trigger.clone(),
            });
        }
        for member in &c.region {
            if def.on_cycle(member) {
                return Err(SoundnessError::CancellationOnCycle {
                    trigger: c.trigger.clone(),
                    member: member.clone(),
                });
            }
        }
    }
    // cancelling a branch an AND-join outside the region still waits for
    for c in &def.cancellations {
        let region: BTreeSet<&str> = c.region.iter().map(String::as_str).collect();
        for a in &def.activities {
            if a.join != JoinKind::All || region.contains(a.id.as_str()) {
                continue;
            }
            let incoming = def.incoming(&a.id);
            let cancelled: Vec<&&String> =
                incoming.iter().filter(|p| region.contains(p.as_str())).collect();
            if !cancelled.is_empty() && cancelled.len() < incoming.len() {
                return Err(SoundnessError::CancellationOrphans {
                    trigger: c.trigger.clone(),
                    join: a.id.clone(),
                    branch: cancelled[0].to_string(),
                });
            }
        }
    }

    // -- reachability --------------------------------------------------------
    let net = Net::build(def);
    let initial = {
        let mut m = vec![0u8; net.places.len()];
        m[0] = 1;
        m
    };
    let mut visited: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<u8>> = VecDeque::from([initial]);
    let mut fired: BTreeSet<&str> = BTreeSet::new();
    let mut terminals = 0usize;

    while let Some(marking) = queue.pop_front() {
        if !visited.insert(marking.clone()) {
            continue;
        }
        if visited.len() > MAX_STATES {
            return Err(SoundnessError::StateSpaceExceeded { states: visited.len() });
        }
        let mut any_enabled = false;
        for act in &def.activities {
            let in_edges = &net.in_edges[act.id.as_str()];
            let marked: Vec<usize> = in_edges.iter().copied().filter(|&i| marking[i] > 0).collect();
            if marked.is_empty() {
                continue;
            }
            // Which in-edges does one firing consume from?
            let consumptions: Vec<Vec<usize>> = match act.join {
                JoinKind::Any => marked.iter().map(|&i| vec![i]).collect(),
                JoinKind::All => {
                    if marked.len() < in_edges.len() {
                        continue; // some branch not delivered yet
                    }
                    vec![in_edges.clone()]
                }
                JoinKind::Or => {
                    let empty_live =
                        in_edges.iter().any(|&i| marking[i] == 0 && net.place_live(&marking, i));
                    if empty_live {
                        continue; // an unmarked branch can still deliver
                    }
                    vec![marked.clone()]
                }
            };
            any_enabled = true;
            fired.insert(act.id.as_str());

            // All guards this firing decides: outgoing transitions + the
            // cancellation regions it triggers, under one consistent world.
            let route_conds: Vec<&Condition> =
                def.outgoing(&act.id).iter().filter_map(|t| t.condition.as_ref()).collect();
            let cancel_conds: Vec<&Condition> = def
                .cancellations_triggered_by(&act.id)
                .iter()
                .filter_map(|c| c.condition.as_ref())
                .collect();
            let all_conds: Vec<&Condition> =
                route_conds.iter().chain(cancel_conds.iter()).copied().collect();

            for consume in &consumptions {
                for world in valuations(&all_conds) {
                    let mut produced: Vec<usize> = Vec::new();
                    let mut enabled_any = false;
                    for t in def.outgoing(&act.id) {
                        let taken = match &t.condition {
                            None => true,
                            Some(c) => condition_holds(c, &world),
                        };
                        if !taken {
                            continue;
                        }
                        enabled_any = true;
                        if let Target::Activity(to) = &t.to {
                            let idx = net
                                .places
                                .iter()
                                .position(|p| p.from == act.id && &p.to == to)
                                .expect("edge place exists");
                            produced.push(idx);
                        }
                    }
                    if !enabled_any && !def.outgoing(&act.id).is_empty() {
                        // evaluate_route errors at runtime in this world:
                        // the branch dies with pending work — treat the
                        // world as a stuck terminal only if something else
                        // is marked; the run fails either way, which the
                        // fuzzer exercises. Skip producing successors.
                        continue;
                    }
                    let mut next = marking.clone();
                    for &i in consume {
                        next[i] -= 1;
                    }
                    let mut overflow: Option<usize> = None;
                    for &i in &produced {
                        if next[i] >= MAX_TOKENS_PER_EDGE {
                            overflow = Some(i);
                            break;
                        }
                        next[i] += 1;
                    }
                    if let Some(i) = overflow {
                        return Err(SoundnessError::Unbounded {
                            from: net.places[i].from.clone(),
                            to: net.places[i].to.clone(),
                        });
                    }
                    // cancellation: withdraw pending work of fired regions
                    for region in def.cancellations_triggered_by(&act.id) {
                        let holds = match &region.condition {
                            None => true,
                            Some(c) => condition_holds(c, &world),
                        };
                        if !holds {
                            continue;
                        }
                        for member in &region.region {
                            for &i in &net.in_edges[member.as_str()] {
                                next[i] = 0;
                            }
                        }
                    }
                    if !visited.contains(&next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        if !any_enabled {
            let pending: Vec<ActivityId> = net
                .in_edges
                .iter()
                .filter(|(_, edges)| edges.iter().any(|&i| marking[i] > 0))
                .map(|(a, _)| a.to_string())
                .collect();
            if pending.is_empty() {
                terminals += 1; // proper completion: no tokens left
            } else {
                return Err(SoundnessError::Deadlock { waiting: pending });
            }
        }
    }

    for a in &def.activities {
        if !fired.contains(a.id.as_str()) {
            return Err(SoundnessError::DeadActivity(a.id.clone()));
        }
    }

    Ok(SoundnessReport { states_explored: visited.len(), activities_fired: fired.len(), terminals })
}

/// Convenience wrapper returning [`WfError::Unsound`] for admission paths.
pub fn require_sound(def: &WorkflowDefinition) -> WfResult<SoundnessReport> {
    check_soundness(def).map_err(WfError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activity, Condition, FieldRef, WorkflowDefinition};

    fn act(id: &str, participant: &str, join: JoinKind, responses: &[&str]) -> Activity {
        Activity {
            id: id.into(),
            participant: participant.into(),
            join,
            requests: vec![],
            responses: responses.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn fig9a() -> WorkflowDefinition {
        WorkflowDefinition::builder("fig9a", "designer")
            .simple_activity("A", "p_a", &["attachment"])
            .simple_activity("B1", "p_b1", &["review1"])
            .simple_activity("B2", "p_b2", &["review2"])
            .activity(act("C", "p_c", JoinKind::All, &["decision"]))
            .simple_activity("D", "p_d", &["ack"])
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
            .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
            .flow_end("D")
            .build()
            .unwrap()
    }

    #[test]
    fn fig9a_is_sound() {
        let report = check_soundness(&fig9a()).unwrap();
        assert!(report.states_explored > 0);
        assert_eq!(report.activities_fired, 5);
        assert!(report.terminals > 0);
    }

    #[test]
    fn linear_is_sound() {
        let def = WorkflowDefinition::builder("lin", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &[])
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap();
        check_soundness(&def).unwrap();
    }

    #[test]
    fn and_join_with_conditional_branch_deadlocks() {
        // A -> B always, A -> C only conditionally; J = All-join(B, C).
        // In the world where the condition is false, J starves on C.
        let def = WorkflowDefinition::builder("dead", "d")
            .simple_activity("A", "p", &["mode"])
            .simple_activity("B", "q", &["x"])
            .simple_activity("C", "r", &["y"])
            .activity(act("J", "s", JoinKind::All, &[]))
            .flow("A", "B")
            .flow_if("A", "C", Condition::field_equals("A", "mode", "both"))
            .flow_end_if("A", Condition::field_not_equals("A", "mode", "both"))
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .build()
            .unwrap();
        let err = check_soundness(&def).unwrap_err();
        assert!(
            matches!(err, SoundnessError::Deadlock { ref waiting } if waiting.contains(&"J".to_string())),
            "{err}"
        );
    }

    #[test]
    fn or_join_with_conditional_branch_is_sound() {
        // Same shape as the deadlock case, but J is a synchronizing merge:
        // it fires with whatever arrived once C can no longer deliver.
        let def = WorkflowDefinition::builder("sound-or", "d")
            .simple_activity("A", "p", &["mode"])
            .simple_activity("B", "q", &["x"])
            .simple_activity("C", "r", &["y"])
            .activity(act("J", "s", JoinKind::Or, &[]))
            .flow("A", "B")
            .flow_if("A", "C", Condition::field_equals("A", "mode", "both"))
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .build()
            .unwrap();
        let report = check_soundness(&def).unwrap();
        assert_eq!(report.activities_fired, 4);
    }

    #[test]
    fn dead_and_join_detected() {
        // J joins B with itself via two edges from exclusive branches:
        // B -> J and C -> J where B and C are exclusive — J never fires.
        let def = WorkflowDefinition::builder("deadact", "d")
            .simple_activity("A", "p", &["mode"])
            .simple_activity("B", "q", &["x"])
            .simple_activity("C", "r", &["y"])
            .activity(act("J", "s", JoinKind::All, &[]))
            .flow_if("A", "B", Condition::field_equals("A", "mode", "left"))
            .flow_if("A", "C", Condition::field_not_equals("A", "mode", "left"))
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .build()
            .unwrap();
        let err = check_soundness(&def).unwrap_err();
        // The branch that arrives at J parks forever: deadlock, with the
        // specific waiter named.
        assert!(
            matches!(err, SoundnessError::Deadlock { ref waiting } if waiting == &["J"]),
            "{err}"
        );
    }

    #[test]
    fn unbounded_join_detected() {
        // A loop that AND-splits into a branch that is never joined back:
        // every lap parks one more token at J, which waits for its second
        // input that only arrives next lap.
        let def = WorkflowDefinition::builder("unbounded", "d")
            .simple_activity("A", "p", &["go"])
            .simple_activity("B", "q", &["x"])
            .activity(act("J", "s", JoinKind::All, &[]))
            .flow("A", "B")
            .flow("A", "J")
            .flow_if("B", "A", Condition::field_equals("B", "x", "again"))
            .flow_if("B", "J", Condition::field_not_equals("B", "x", "again"))
            .flow_end("J")
            .build()
            .unwrap();
        let err = check_soundness(&def).unwrap_err();
        assert!(
            matches!(err, SoundnessError::Unbounded { .. } | SoundnessError::Deadlock { .. }),
            "{err}"
        );
    }

    #[test]
    fn orphaning_cancellation_detected() {
        let def = WorkflowDefinition::builder("orphan", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("B", "q", &["x"])
            .simple_activity("C", "r", &["y"])
            .activity(act("J", "s", JoinKind::All, &[]))
            .flow("A", "B")
            .flow("A", "C")
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .cancel_on("B", &["C"])
            .build()
            .unwrap();
        let err = check_soundness(&def).unwrap_err();
        assert_eq!(
            err,
            SoundnessError::CancellationOrphans {
                trigger: "B".into(),
                join: "J".into(),
                branch: "C".into()
            }
        );
    }

    #[test]
    fn sound_cancellation_of_or_join_branch() {
        let def = WorkflowDefinition::builder("cancel-ok", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("B", "q", &["x"])
            .simple_activity("C", "r", &["y"])
            .activity(act("J", "s", JoinKind::Or, &[]))
            .flow("A", "B")
            .flow("A", "C")
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .cancel_on("B", &["C"])
            .build()
            .unwrap();
        check_soundness(&def).unwrap();
    }

    #[test]
    fn multi_instance_on_cycle_rejected() {
        let def = WorkflowDefinition::builder("mi-cycle", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &["y"])
            .flow("A", "B")
            .flow_if("B", "A", Condition::field_equals("B", "y", "again"))
            .flow_end_if("B", Condition::field_not_equals("B", "y", "again"))
            .multi_static("B", 3)
            .build()
            .unwrap();
        assert_eq!(
            check_soundness(&def).unwrap_err(),
            SoundnessError::MultiInstanceOnCycle("B".into())
        );
    }

    #[test]
    fn or_join_on_cycle_rejected() {
        let def = WorkflowDefinition::builder("or-cycle", "d")
            .simple_activity("A", "p", &["x"])
            .activity(act("J", "q", JoinKind::Or, &["y"]))
            .flow("A", "J")
            .flow_if("J", "A", Condition::field_equals("J", "y", "again"))
            .flow_end_if("J", Condition::field_not_equals("J", "y", "again"))
            .build()
            .unwrap();
        assert_eq!(check_soundness(&def).unwrap_err(), SoundnessError::OrJoinOnCycle("J".into()));
    }

    #[test]
    fn cancellation_on_cycle_rejected() {
        let def = WorkflowDefinition::builder("cx-cycle", "d")
            .simple_activity("A", "p", &["x"])
            .simple_activity("B", "q", &["y"])
            .simple_activity("C", "r", &["z"])
            .flow("A", "B")
            .flow("A", "C")
            .flow_if("B", "A", Condition::field_equals("B", "y", "again"))
            .flow_end_if("B", Condition::field_not_equals("B", "y", "again"))
            .flow_end("C")
            .cancel_on("C", &["B"])
            .build()
            .unwrap();
        let err = check_soundness(&def).unwrap_err();
        assert!(matches!(err, SoundnessError::CancellationOnCycle { .. }), "{err}");
    }

    #[test]
    fn multi_instance_is_sound_off_cycle() {
        let def = WorkflowDefinition::builder("mi", "d")
            .simple_activity("A", "p", &["n"])
            .simple_activity("B", "q", &["part"])
            .simple_activity("C", "r", &[])
            .flow("A", "B")
            .flow("B", "C")
            .flow_end("C")
            .multi_runtime("B", "A", "n")
            .build()
            .unwrap();
        check_soundness(&def).unwrap();
        // runtime cardinality field is part of the routing inputs
        assert!(def.condition_fields().contains(&FieldRef::new("A", "n")));
    }

    #[test]
    fn invalid_definition_reported_as_invalid() {
        let mut def = fig9a();
        def.start = "GHOST".into();
        assert!(matches!(check_soundness(&def).unwrap_err(), SoundnessError::Invalid(_)));
    }

    #[test]
    fn report_is_deterministic() {
        let a = check_soundness(&fig9a()).unwrap();
        let b = check_soundness(&fig9a()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn require_sound_maps_to_wferror() {
        let def = WorkflowDefinition::builder("orphan", "d")
            .simple_activity("A", "p", &[])
            .simple_activity("B", "q", &[])
            .simple_activity("C", "r", &[])
            .activity(act("J", "s", JoinKind::All, &[]))
            .flow("A", "B")
            .flow("A", "C")
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .cancel_on("B", &["C"])
            .build()
            .unwrap();
        let err = require_sound(&def).unwrap_err();
        assert!(matches!(err, WfError::Unsound(ref m) if m.contains("orphans")), "{err}");
    }
}
