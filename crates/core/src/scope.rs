//! Algorithm 1 of the paper: deriving the **nonrepudiation scope** of a CER.
//!
//! > "A nonrepudiation scope is consisted of a set of CERs. If a CER α is
//! > with a nonrepudiation scope Γ, then the participant which generated the
//! > CER α cannot deny having received a DRA4WfMS document containing CERs
//! > in Γ and accordingly generates α." (§2.3.2)
//!
//! Because every cascade signature covers the signatures of its predecessor
//! CERs, the scope is the transitive closure of the "signs" relation — this
//! module computes it with the worklist fixpoint of the paper's Algorithm 1.

use crate::document::{DraDocument, PredRef};
use crate::error::{WfError, WfResult};
use std::collections::{BTreeMap, BTreeSet};

/// The "signs" edges of a document: each CER (or Def) maps to the set of
/// cascade nodes whose signatures it directly signs.
pub fn signature_graph(doc: &DraDocument) -> WfResult<BTreeMap<PredRef, BTreeSet<PredRef>>> {
    let mut graph: BTreeMap<PredRef, BTreeSet<PredRef>> = BTreeMap::new();
    graph.insert(PredRef::Def, BTreeSet::new());
    for cer in doc.cers()? {
        graph.insert(PredRef::Cer(cer.key.clone()), cer.preds.iter().cloned().collect());
    }
    Ok(graph)
}

/// Algorithm 1: the nonrepudiation scope Γ of `alpha` within `doc`.
///
/// Γ includes `alpha` itself (the participant cannot repudiate its own
/// execution) and transitively every CER whose signature is covered.
pub fn nonrepudiation_scope(doc: &DraDocument, alpha: &PredRef) -> WfResult<BTreeSet<PredRef>> {
    let graph = signature_graph(doc)?;
    if !graph.contains_key(alpha) {
        return Err(WfError::Malformed(format!("{alpha} is not a CER of this document")));
    }
    // Γ = {α}; repeat: for each β ∈ Γ, add the CERs whose signatures β signs.
    let mut gamma: BTreeSet<PredRef> = BTreeSet::from([alpha.clone()]);
    let mut changes = true;
    while changes {
        changes = false;
        let snapshot: Vec<PredRef> = gamma.iter().cloned().collect();
        for beta in snapshot {
            if let Some(delta) = graph.get(&beta) {
                for d in delta {
                    if gamma.insert(d.clone()) {
                        changes = true;
                    }
                }
            }
        }
    }
    Ok(gamma)
}

/// Convenience: scopes of every CER in the document, keyed by CER.
pub fn all_scopes(doc: &DraDocument) -> WfResult<BTreeMap<PredRef, BTreeSet<PredRef>>> {
    let graph = signature_graph(doc)?;
    let mut out = BTreeMap::new();
    for key in graph.keys() {
        out.insert(key.clone(), nonrepudiation_scope(doc, key)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{CerKey, DraDocument};
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;
    use dra_xml::Element;

    /// Build a document whose CERs carry the given preds attributes
    /// (structure-only; scope computation does not verify signatures).
    fn doc_with_cers(cers: &[(&str, u32, &str)]) -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .build()
            .unwrap();
        let mut doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid")
                .unwrap();
        for (act, iter, preds) in cers {
            doc.push_cer(
                Element::new("CER")
                    .attr("activity", *act)
                    .attr("iter", iter.to_string())
                    .attr("participant", "p")
                    .attr("preds", *preds),
            )
            .unwrap();
        }
        doc
    }

    fn cer(a: &str, i: u32) -> PredRef {
        PredRef::Cer(CerKey::new(a, i))
    }

    #[test]
    fn scope_of_def_is_itself() {
        let doc = doc_with_cers(&[]);
        let s = nonrepudiation_scope(&doc, &PredRef::Def).unwrap();
        assert_eq!(s, BTreeSet::from([PredRef::Def]));
    }

    #[test]
    fn linear_chain_scope_is_prefix() {
        // Def <- A#0 <- B#0 <- C#0
        let doc = doc_with_cers(&[("A", 0, "Def"), ("B", 0, "A#0"), ("C", 0, "B#0")]);
        let s = nonrepudiation_scope(&doc, &cer("C", 0)).unwrap();
        assert_eq!(s, BTreeSet::from([PredRef::Def, cer("A", 0), cer("B", 0), cer("C", 0)]));
        let s = nonrepudiation_scope(&doc, &cer("B", 0)).unwrap();
        assert_eq!(s, BTreeSet::from([PredRef::Def, cer("A", 0), cer("B", 0)]));
        // A#0's scope does NOT include its successors.
        let s = nonrepudiation_scope(&doc, &cer("A", 0)).unwrap();
        assert!(!s.contains(&cer("B", 0)));
    }

    #[test]
    fn and_join_scope_covers_both_branches() {
        // Def <- A#0 <- {B1#0, B2#0} <- C#0 (joins both)
        let doc = doc_with_cers(&[
            ("A", 0, "Def"),
            ("B1", 0, "A#0"),
            ("B2", 0, "A#0"),
            ("C", 0, "B1#0,B2#0"),
        ]);
        let s = nonrepudiation_scope(&doc, &cer("C", 0)).unwrap();
        assert!(s.contains(&cer("B1", 0)));
        assert!(s.contains(&cer("B2", 0)));
        assert!(s.contains(&cer("A", 0)));
        assert!(s.contains(&PredRef::Def));
        // Parallel branches do not cover each other.
        let s1 = nonrepudiation_scope(&doc, &cer("B1", 0)).unwrap();
        assert!(!s1.contains(&cer("B2", 0)));
    }

    #[test]
    fn loop_iterations_chain() {
        // A#0 <- B#0 <- A#1 <- B#1 (Fig. 3B style loop)
        let doc =
            doc_with_cers(&[("A", 0, "Def"), ("B", 0, "A#0"), ("A", 1, "B#0"), ("B", 1, "A#1")]);
        let s = nonrepudiation_scope(&doc, &cer("B", 1)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.contains(&cer("A", 0)));
        assert!(s.contains(&cer("A", 1)));
    }

    #[test]
    fn unknown_cer_rejected() {
        let doc = doc_with_cers(&[("A", 0, "Def")]);
        assert!(nonrepudiation_scope(&doc, &cer("GHOST", 0)).is_err());
    }

    #[test]
    fn all_scopes_monotone_along_chain() {
        let doc = doc_with_cers(&[("A", 0, "Def"), ("B", 0, "A#0"), ("C", 0, "B#0")]);
        let scopes = all_scopes(&doc).unwrap();
        // scope sizes strictly increase along the chain
        assert!(scopes[&PredRef::Def].len() < scopes[&cer("A", 0)].len());
        assert!(scopes[&cer("A", 0)].len() < scopes[&cer("B", 0)].len());
        assert!(scopes[&cer("B", 0)].len() < scopes[&cer("C", 0)].len());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random DAG of n CERs: CER i's preds are a nonempty subset of
        /// earlier CERs (or Def).
        fn arb_dag(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
            // preds[i] ⊆ {0..i} where index 0 means Def and j>0 means CER j-1
            let mut strategies = Vec::new();
            for i in 0..n {
                strategies.push(proptest::collection::btree_set(0..=i, 1..=(i + 1)));
            }
            strategies.prop_map(|sets: Vec<std::collections::BTreeSet<usize>>| {
                sets.into_iter().map(|s| s.into_iter().collect()).collect()
            })
        }

        fn build(preds: &[Vec<usize>]) -> DraDocument {
            let specs: Vec<(String, u32, String)> = preds
                .iter()
                .enumerate()
                .map(|(i, ps)| {
                    let attr = ps
                        .iter()
                        .map(|&p| if p == 0 { "Def".to_string() } else { format!("N{}#0", p - 1) })
                        .collect::<Vec<_>>()
                        .join(",");
                    (format!("N{i}"), 0u32, attr)
                })
                .collect();
            let borrowed: Vec<(&str, u32, &str)> =
                specs.iter().map(|(a, i, p)| (a.as_str(), *i, p.as_str())).collect();
            doc_with_cers(&borrowed)
        }

        proptest! {
            /// Scope equals the reflexive-transitive closure of the preds
            /// relation, computed independently by DFS.
            #[test]
            fn prop_scope_is_transitive_closure(preds in arb_dag(8)) {
                let doc = build(&preds);
                for i in 0..preds.len() {
                    let alpha = cer(&format!("N{i}"), 0);
                    let scope = nonrepudiation_scope(&doc, &alpha).unwrap();
                    // independent DFS over indices
                    let mut seen = std::collections::BTreeSet::new();
                    let mut stack = vec![i + 1]; // 1-based; 0 = Def
                    while let Some(x) = stack.pop() {
                        if !seen.insert(x) { continue; }
                        if x > 0 {
                            for &p in &preds[x - 1] { stack.push(p); }
                        }
                    }
                    let expected: BTreeSet<PredRef> = seen
                        .into_iter()
                        .map(|x| if x == 0 { PredRef::Def } else { cer(&format!("N{}", x - 1), 0) })
                        .collect();
                    prop_assert_eq!(scope, expected);
                }
            }

            /// Every scope contains Def (the cascade root) and alpha itself.
            #[test]
            fn prop_scope_contains_root_and_self(preds in arb_dag(6)) {
                let doc = build(&preds);
                for i in 0..preds.len() {
                    let alpha = cer(&format!("N{i}"), 0);
                    let scope = nonrepudiation_scope(&doc, &alpha).unwrap();
                    prop_assert!(scope.contains(&alpha));
                    prop_assert!(scope.contains(&PredRef::Def));
                }
            }

            /// Monotonicity: a CER's scope contains the scope of each pred.
            #[test]
            fn prop_scope_monotone(preds in arb_dag(6)) {
                let doc = build(&preds);
                let scopes = all_scopes(&doc).unwrap();
                for (i, ps) in preds.iter().enumerate() {
                    let me = &scopes[&cer(&format!("N{i}"), 0)];
                    for &p in ps {
                        let pref = if p == 0 { PredRef::Def } else { cer(&format!("N{}", p - 1), 0) };
                        prop_assert!(scopes[&pref].is_subset(me));
                    }
                }
            }
        }
    }
}
