//! A compact textual process-definition language.
//!
//! The paper builds on the WfMC's XML Process Definition Language (XPDL
//! [20]); authoring raw XML by hand is painful, so this module provides a
//! human-writable DSL that compiles to [`WorkflowDefinition`]:
//!
//! ```text
//! workflow "purchase-order" designer "designer" tfc "TFC"
//!
//! activity A by supplier {
//!     respond attachment, total
//! }
//! activity B1 by reviewer {
//!     request A.total
//!     respond review
//! }
//! activity C by purchasing join all {
//!     respond decision
//! }
//!
//! flow A -> B1
//! flow A -> C
//! flow B1 -> C
//! flow C -> A  when C.decision == "insufficient"
//! flow C -> end when C.decision != "insufficient"
//! ```
//!
//! Lines starting with `#` are comments. The first declared activity is the
//! start unless a `start X` line overrides it.

use crate::error::{WfError, WfResult};
use crate::model::{
    Activity, CancelRegion, Cardinality, Condition, FieldRef, JoinKind, MultiInstance, Target,
    Transition, WorkflowDefinition,
};

/// Parse the DSL into a validated [`WorkflowDefinition`].
pub fn parse_workflow(src: &str) -> WfResult<WorkflowDefinition> {
    let mut name = None;
    let mut designer = None;
    let mut tfc = None;
    let mut start: Option<String> = None;
    let mut activities: Vec<Activity> = Vec::new();
    let mut transitions: Vec<Transition> = Vec::new();
    let mut multi: Vec<MultiInstance> = Vec::new();
    let mut cancellations: Vec<CancelRegion> = Vec::new();

    let mut lines = src.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| WfError::Parse(format!("line {}: {msg}", lineno + 1));

        if let Some(rest) = line.strip_prefix("workflow ") {
            let (n, rest) = take_quoted(rest).ok_or_else(|| err("expected workflow \"name\""))?;
            name = Some(n);
            let mut rest = rest.trim();
            while !rest.is_empty() {
                if let Some(r) = rest.strip_prefix("designer ") {
                    let (d, r2) =
                        take_quoted(r).ok_or_else(|| err("expected designer \"name\""))?;
                    designer = Some(d);
                    rest = r2.trim();
                } else if let Some(r) = rest.strip_prefix("tfc ") {
                    let (t, r2) = take_quoted(r).ok_or_else(|| err("expected tfc \"name\""))?;
                    tfc = Some(t);
                    rest = r2.trim();
                } else {
                    return Err(err(&format!("unexpected tokens: '{rest}'")));
                }
            }
        } else if let Some(rest) = line.strip_prefix("start ") {
            start = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("activity ") {
            let mut act = parse_activity_header(rest).map_err(|m| err(&m))?;
            // body: either on following lines until '}', or empty "{}" inline
            if rest.trim_end().ends_with("{}") {
                activities.push(act);
                continue;
            }
            loop {
                let Some((bl, braw)) = lines.next() else {
                    return Err(WfError::Parse(format!(
                        "line {}: unterminated activity block",
                        lineno + 1
                    )));
                };
                let bline = strip_comment(braw).trim();
                if bline.is_empty() {
                    continue;
                }
                if bline == "}" {
                    break;
                }
                let berr = |msg: &str| WfError::Parse(format!("line {}: {msg}", bl + 1));
                if let Some(fields) = bline.strip_prefix("respond ") {
                    for f in fields.split(',') {
                        let f = f.trim();
                        if f.is_empty() {
                            return Err(berr("empty response field"));
                        }
                        act.responses.push(f.to_string());
                    }
                } else if let Some(refs) = bline.strip_prefix("request ") {
                    for r in refs.split(',') {
                        let r = r.trim();
                        let (a, f) = r
                            .split_once('.')
                            .ok_or_else(|| berr("request must be activity.field"))?;
                        act.requests.push(FieldRef::new(a, f));
                    }
                } else {
                    return Err(berr(&format!("unexpected line in activity block: '{bline}'")));
                }
            }
            activities.push(act);
        } else if let Some(rest) = line.strip_prefix("flow ") {
            transitions.push(parse_flow(rest).map_err(|m| err(&m))?);
        } else if let Some(rest) = line.strip_prefix("multi ") {
            multi.push(parse_multi(rest).map_err(|m| err(&m))?);
        } else if let Some(rest) = line.strip_prefix("cancel ") {
            cancellations.push(parse_cancel(rest).map_err(|m| err(&m))?);
        } else {
            return Err(err(&format!("unrecognized statement: '{line}'")));
        }
    }

    let mut def = WorkflowDefinition {
        name: name.ok_or_else(|| WfError::Parse("missing 'workflow \"name\"'".into()))?,
        designer: designer.ok_or_else(|| WfError::Parse("missing 'designer \"name\"'".into()))?,
        start: String::new(),
        activities,
        transitions,
        multi,
        cancellations,
        tfc,
    };
    def.start = match start {
        Some(s) => s,
        None => def
            .activities
            .first()
            .map(|a| a.id.clone())
            .ok_or_else(|| WfError::Parse("no activities declared".into()))?,
    };
    def.validate()?;
    Ok(def)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `"value" rest` → (value, rest)
fn take_quoted(s: &str) -> Option<(String, &str)> {
    let s = s.trim_start();
    let rest = s.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((rest[..end].to_string(), &rest[end + 1..]))
}

/// `A by participant [join all|any|or] {`
fn parse_activity_header(rest: &str) -> Result<Activity, String> {
    let rest = rest.trim().trim_end_matches("{}").trim_end_matches('{').trim();
    let mut tokens = rest.split_whitespace();
    let id = tokens.next().ok_or("expected activity id")?.to_string();
    match tokens.next() {
        Some("by") => {}
        other => return Err(format!("expected 'by', found {other:?}")),
    }
    let participant = tokens.next().ok_or("expected participant")?.to_string();
    let mut join = JoinKind::Any;
    match tokens.next() {
        None => {}
        Some("join") => match tokens.next() {
            Some("all") => join = JoinKind::All,
            Some("any") => join = JoinKind::Any,
            Some("or") => join = JoinKind::Or,
            other => return Err(format!("expected 'all', 'any' or 'or', found {other:?}")),
        },
        Some(t) => return Err(format!("unexpected token '{t}'")),
    }
    if let Some(t) = tokens.next() {
        return Err(format!("unexpected token '{t}'"));
    }
    Ok(Activity { id, participant, join, requests: Vec::new(), responses: Vec::new() })
}

/// `B 3` (static) or `B from A.n` (runtime cardinality)
fn parse_multi(rest: &str) -> Result<MultiInstance, String> {
    let mut tokens = rest.split_whitespace();
    let activity = tokens.next().ok_or("expected activity id after 'multi'")?.to_string();
    let cardinality = match tokens.next() {
        Some("from") => {
            let r = tokens.next().ok_or("expected activity.field after 'from'")?;
            let (a, f) = r.split_once('.').ok_or("cardinality source must be activity.field")?;
            Cardinality::Runtime(FieldRef::new(a, f))
        }
        Some(count) => {
            let k: u32 =
                count.parse().map_err(|_| format!("'{count}' is not an instance count"))?;
            Cardinality::Static(k)
        }
        None => return Err("expected instance count or 'from activity.field'".into()),
    };
    if let Some(t) = tokens.next() {
        return Err(format!("unexpected token '{t}'"));
    }
    Ok(MultiInstance { activity, cardinality })
}

/// `C, D on B [when A.mode == "solo"]`
fn parse_cancel(rest: &str) -> Result<CancelRegion, String> {
    let (rest, condition) = match rest.find(" when ") {
        Some(i) => {
            let cond = parse_condition(rest[i + 6..].trim())?;
            (&rest[..i], Some(cond))
        }
        None => (rest, None),
    };
    let (region_part, trigger) = rest.split_once(" on ").ok_or("expected 'region on trigger'")?;
    let region: Vec<String> =
        region_part.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if region.is_empty() {
        return Err("expected at least one activity before 'on'".into());
    }
    Ok(CancelRegion { trigger: trigger.trim().to_string(), condition, region })
}

/// `A.field == "v"` or `A.field != "v"`
fn parse_condition(c: &str) -> Result<Condition, String> {
    let (lhs, negate, value) = if let Some((l, v)) = c.split_once("==") {
        (l, false, v)
    } else if let Some((l, v)) = c.split_once("!=") {
        (l, true, v)
    } else {
        return Err("condition must use == or !=".into());
    };
    let (activity, field) =
        lhs.trim().split_once('.').ok_or("condition left side must be activity.field")?;
    let (value, _) = take_quoted(value).ok_or("condition value must be quoted")?;
    Ok(Condition {
        activity: activity.trim().to_string(),
        field: field.trim().to_string(),
        equals: value,
        negate,
    })
}

/// `A -> B [when A.field == "v" | when A.field != "v"]` (or `-> end`)
fn parse_flow(rest: &str) -> Result<Transition, String> {
    let (edge, cond) = match rest.find(" when ") {
        Some(i) => (&rest[..i], Some(rest[i + 6..].trim())),
        None => (rest, None),
    };
    let (from, to) = edge.split_once("->").ok_or("expected 'from -> to'")?;
    let from = from.trim().to_string();
    let to = to.trim();
    let to =
        if to.eq_ignore_ascii_case("end") { Target::End } else { Target::Activity(to.to_string()) };
    let condition = match cond {
        None => None,
        Some(c) => Some(parse_condition(c)?),
    };
    Ok(Transition { from, to, condition })
}

fn condition_to_dsl(c: &Condition) -> String {
    format!("{}.{} {} \"{}\"", c.activity, c.field, if c.negate { "!=" } else { "==" }, c.equals)
}

/// Render a definition back into the DSL (inverse of [`parse_workflow`]).
pub fn to_dsl(def: &WorkflowDefinition) -> String {
    let mut out = format!("workflow \"{}\" designer \"{}\"", def.name, def.designer);
    if let Some(t) = &def.tfc {
        out.push_str(&format!(" tfc \"{t}\""));
    }
    out.push('\n');
    if def.activities.first().map(|a| &a.id) != Some(&def.start) {
        out.push_str(&format!("start {}\n", def.start));
    }
    out.push('\n');
    for a in &def.activities {
        out.push_str(&format!("activity {} by {}", a.id, a.participant));
        match a.join {
            JoinKind::Any => {}
            JoinKind::All => out.push_str(" join all"),
            JoinKind::Or => out.push_str(" join or"),
        }
        if a.requests.is_empty() && a.responses.is_empty() {
            out.push_str(" {}\n");
            continue;
        }
        out.push_str(" {\n");
        if !a.requests.is_empty() {
            let reqs: Vec<String> =
                a.requests.iter().map(|r| format!("{}.{}", r.activity, r.field)).collect();
            out.push_str(&format!("    request {}\n", reqs.join(", ")));
        }
        if !a.responses.is_empty() {
            out.push_str(&format!("    respond {}\n", a.responses.join(", ")));
        }
        out.push_str("}\n");
    }
    out.push('\n');
    for t in &def.transitions {
        let to = match &t.to {
            Target::Activity(a) => a.clone(),
            Target::End => "end".to_string(),
        };
        out.push_str(&format!("flow {} -> {}", t.from, to));
        if let Some(c) = &t.condition {
            out.push_str(&format!(" when {}", condition_to_dsl(c)));
        }
        out.push('\n');
    }
    for m in &def.multi {
        match &m.cardinality {
            Cardinality::Static(k) => out.push_str(&format!("multi {} {k}\n", m.activity)),
            Cardinality::Runtime(r) => {
                out.push_str(&format!("multi {} from {}.{}\n", m.activity, r.activity, r.field))
            }
        }
    }
    for c in &def.cancellations {
        out.push_str(&format!("cancel {} on {}", c.region.join(", "), c.trigger));
        if let Some(cond) = &c.condition {
            out.push_str(&format!(" when {}", condition_to_dsl(cond)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG9: &str = r#"
# the paper's Fig. 9 process
workflow "purchase-order" designer "designer" tfc "TFC"

activity A by supplier {
    respond attachment, total
}
activity B1 by finance {
    request A.total
    respond check1
}
activity B2 by legal {
    request A.attachment
    respond check2
}
activity C by purchasing join all {
    request B1.check1, B2.check2
    respond decision
}
activity D by fulfilment {
    respond ack
}

flow A -> B1
flow A -> B2
flow B1 -> C
flow B2 -> C
flow C -> A when C.decision == "insufficient"
flow C -> D when C.decision != "insufficient"
flow D -> end
"#;

    #[test]
    fn parses_fig9() {
        let def = parse_workflow(FIG9).unwrap();
        assert_eq!(def.name, "purchase-order");
        assert_eq!(def.designer, "designer");
        assert_eq!(def.tfc.as_deref(), Some("TFC"));
        assert_eq!(def.start, "A");
        assert_eq!(def.activities.len(), 5);
        let c = def.activity("C").unwrap();
        assert_eq!(c.join, JoinKind::All);
        assert_eq!(c.requests.len(), 2);
        assert_eq!(c.responses, vec!["decision"]);
        assert_eq!(def.transitions.len(), 7);
        let back_edge = def
            .transitions
            .iter()
            .find(|t| t.from == "C" && matches!(&t.to, Target::Activity(a) if a == "A"))
            .unwrap();
        let cond = back_edge.condition.as_ref().unwrap();
        assert_eq!(cond.equals, "insufficient");
        assert!(!cond.negate);
    }

    #[test]
    fn roundtrips_through_dsl() {
        let def = parse_workflow(FIG9).unwrap();
        let dsl = to_dsl(&def);
        let reparsed = parse_workflow(&dsl).unwrap();
        assert_eq!(reparsed, def);
    }

    const PATTERNED: &str = r#"
workflow "patterned" designer "designer"

activity A by planner {
    respond n, mode
}
activity B by worker {
    respond part
}
activity C by helper {
    respond alt
}
activity J by merger join or {
    respond merged
}

flow A -> B
flow A -> C when A.mode == "both"
flow B -> J
flow C -> J
flow J -> end

multi B from A.n
cancel C on B when A.mode == "solo"
"#;

    #[test]
    fn parses_patterns() {
        let def = parse_workflow(PATTERNED).unwrap();
        assert_eq!(def.activity("J").unwrap().join, JoinKind::Or);
        assert_eq!(
            def.multi_for("B").map(|m| &m.cardinality),
            Some(&Cardinality::Runtime(FieldRef::new("A", "n")))
        );
        let cx = &def.cancellations[0];
        assert_eq!(cx.trigger, "B");
        assert_eq!(cx.region, vec!["C"]);
        let cond = cx.condition.as_ref().unwrap();
        assert_eq!((cond.activity.as_str(), cond.equals.as_str()), ("A", "solo"));
    }

    #[test]
    fn patterns_roundtrip_through_dsl() {
        let def = parse_workflow(PATTERNED).unwrap();
        let dsl = to_dsl(&def);
        let reparsed = parse_workflow(&dsl).unwrap();
        assert_eq!(reparsed, def);
    }

    #[test]
    fn static_multi_and_unconditional_cancel() {
        let src = r#"
workflow "w" designer "d"
activity A by p {}
activity B by q {}
activity C by r {}
flow A -> B
flow A -> C
flow B -> end
flow C -> end
multi B 4
cancel C on B
"#;
        let def = parse_workflow(src).unwrap();
        assert_eq!(def.multi_for("B").map(|m| &m.cardinality), Some(&Cardinality::Static(4)));
        assert!(def.cancellations[0].condition.is_none());
        let reparsed = parse_workflow(&to_dsl(&def)).unwrap();
        assert_eq!(reparsed, def);
    }

    #[test]
    fn bad_multi_rejected() {
        let src =
            "workflow \"w\" designer \"d\"\nactivity A by p {}\nflow A -> end\nmulti A lots\n";
        assert!(matches!(parse_workflow(src), Err(WfError::Parse(m)) if m.contains("line 4")));
        let src =
            "workflow \"w\" designer \"d\"\nactivity A by p {}\nflow A -> end\nmulti A from n\n";
        assert!(parse_workflow(src).is_err());
    }

    #[test]
    fn bad_cancel_rejected() {
        let src = "workflow \"w\" designer \"d\"\nactivity A by p {}\nflow A -> end\ncancel A\n";
        assert!(matches!(parse_workflow(src), Err(WfError::Parse(m)) if m.contains("on")));
    }

    #[test]
    fn start_override() {
        let src = r#"
workflow "w" designer "d"
start B
activity A by p {}
activity B by q {}
flow B -> A
flow A -> end
"#;
        let def = parse_workflow(src).unwrap();
        assert_eq!(def.start, "B");
    }

    #[test]
    fn empty_body_and_comments() {
        let src = r#"
workflow "w" designer "d"   # header comment
activity A by p {}          # empty body
flow A -> end
"#;
        let def = parse_workflow(src).unwrap();
        assert!(def.activity("A").unwrap().responses.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src =
            "workflow \"w\" designer \"d\"\nactivity A by p {}\nbogus statement\nflow A -> end\n";
        let err = parse_workflow(src).unwrap_err();
        assert!(matches!(&err, WfError::Parse(m) if m.contains("line 3")), "{err}");
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            parse_workflow("activity A by p {}\nflow A -> end\n"),
            Err(WfError::Parse(_))
        ));
        assert!(matches!(
            parse_workflow("workflow \"w\" designer \"d\"\n"),
            Err(WfError::Parse(_))
        ));
    }

    #[test]
    fn unterminated_block_rejected() {
        let src = "workflow \"w\" designer \"d\"\nactivity A by p {\n    respond x\n";
        assert!(
            matches!(parse_workflow(src), Err(WfError::Parse(m)) if m.contains("unterminated"))
        );
    }

    #[test]
    fn invalid_condition_rejected() {
        let src =
            "workflow \"w\" designer \"d\"\nactivity A by p {}\nflow A -> end when A.x ~ \"1\"\n";
        assert!(parse_workflow(src).is_err());
    }

    #[test]
    fn semantic_validation_still_applies() {
        // DSL parses but the graph is invalid (unknown flow target)
        let src =
            "workflow \"w\" designer \"d\"\nactivity A by p {}\nflow A -> GHOST\nflow A -> end\n";
        assert!(matches!(parse_workflow(src), Err(WfError::UnknownActivity(a)) if a == "GHOST"));
    }

    #[test]
    fn parsed_definition_runs_end_to_end() {
        use crate::aea::Aea;
        use crate::document::DraDocument;
        use crate::identity::{Credentials, Directory};
        use crate::policy::SecurityPolicy;

        let src = r#"
workflow "mini" designer "designer"
activity submit by alice {
    respond amount
}
activity approve by bob {
    request submit.amount
    respond decision
}
flow submit -> approve
flow approve -> end
"#;
        let def = parse_workflow(src).unwrap();
        let designer = Credentials::from_seed("designer", "dsl-d");
        let alice = Credentials::from_seed("alice", "dsl-a");
        let bob = Credentials::from_seed("bob", "dsl-b");
        let dir = Directory::from_credentials([&designer, &alice, &bob]);
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "dsl")
                .unwrap();
        let aea = Aea::new(alice, dir.clone());
        let recv = aea.receive(doc.to_xml_string(), "submit").unwrap();
        let done = aea.complete(&recv, &[("amount".into(), "5".into())]).unwrap();
        let aea = Aea::new(bob, dir.clone());
        let recv = aea.receive(done.document.to_xml_string(), "approve").unwrap();
        assert_eq!(recv.visible.len(), 1);
        let done = aea.complete(&recv, &[("decision".into(), "ok".into())]).unwrap();
        assert!(done.route.ends);
    }
}
