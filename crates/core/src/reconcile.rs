//! The document-vs-trace differential oracle.
//!
//! DRA4WfMS has two records of an execution: the **signed document** (the
//! authoritative one — every CER is cascade-signed, every timestamp
//! TFC-attested) and the **observed trace** (whatever the runtime's
//! [`Tracer`](dra_obs::Tracer) recorded while work happened). The trace is
//! not trusted; nothing signs it. [`reconcile`] rebuilds the execution
//! timeline from the document alone — via [`ProcessStatus`]: CER cascade
//! order, participants, TFC timestamps — and checks the trace against it:
//!
//! * every proven execution has exactly one successful `hop` span, **in the
//!   same order**;
//! * each hop's recorded actor is the participant the document proves;
//! * every TFC timestamp in the document was witnessed by a `tfc:timestamp`
//!   span whose virtual-time window lies inside the successful hop that
//!   produced it.
//!
//! Crashed hop attempts (spans ended with the `"crash"` outcome) are
//! expected noise — recovery re-runs the hop — and are ignored; only
//! successful hops must line up one-to-one with the cascade.

use crate::document::{CerKey, DraDocument};
use crate::monitor::ProcessStatus;
use dra_obs::event::{TraceEvent, OUTCOME_OK};
use dra_obs::stage;
use std::fmt;

/// A reconciliation failure: the observed trace is inconsistent with what
/// the document proves. Each variant pins the exact divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReconcileError {
    /// The document itself could not be read (parse/extraction failure).
    Document(String),
    /// The document proves an execution the trace never completed.
    MissingFromTrace {
        /// Index into the document's cascade.
        position: usize,
        /// The proven execution with no successful hop span.
        expected: CerKey,
    },
    /// The trace claims a successful hop the document does not prove.
    UnprovenExecution {
        /// Index into the successful-hop sequence.
        position: usize,
        /// The claimed activity.
        activity: String,
        /// The claimed iteration.
        iter: u32,
    },
    /// Both records contain the execution, but at different positions.
    OrderMismatch {
        /// Index into the document's cascade.
        position: usize,
        /// What the document proves ran at this position.
        document: CerKey,
        /// What the trace observed at this position.
        trace: CerKey,
    },
    /// The trace attributes the hop to a different identity than the
    /// document's cascade-signed participant.
    ParticipantMismatch {
        /// The execution in question.
        key: CerKey,
        /// The participant the document proves.
        document: String,
        /// The actor the trace recorded.
        trace: String,
    },
    /// The document carries a TFC timestamp no `tfc:timestamp` span
    /// witnessed for that execution.
    TimestampUnwitnessed {
        /// The execution in question.
        key: CerKey,
        /// The document's timestamp (ms).
        timestamp: u64,
    },
    /// A `tfc:timestamp` span exists for the execution but drew a different
    /// value than the document embeds.
    TimestampMismatch {
        /// The execution in question.
        key: CerKey,
        /// The document's timestamp (ms).
        document: u64,
        /// The (closest) witnessed timestamp (ms).
        trace: u64,
    },
    /// The witnessing `tfc:timestamp` span falls outside the virtual-time
    /// bounds of the successful hop that produced the execution.
    TimestampOutsideHop {
        /// The execution in question.
        key: CerKey,
        /// The witness span's `[start, end]` in virtual µs.
        witness_us: (u64, u64),
        /// The successful hop's `[start, end]` in virtual µs.
        hop_us: (u64, u64),
    },
    /// The document proves an execution of an activity whose pending work a
    /// fired cancellation region had already withdrawn: the hop ran after
    /// its region was cancelled.
    CancelledExecution {
        /// Index into the document's cascade.
        position: usize,
        /// The forbidden execution.
        key: CerKey,
        /// The trigger whose completion cancelled the region.
        trigger: String,
    },
    /// A join fired without a branch the definition requires: an AND-join
    /// executed before some incoming branch delivered, or a synchronizing
    /// merge (OR-join) fired while a branch was still to deliver.
    JoinMissingBranch {
        /// Index into the document's cascade.
        position: usize,
        /// The join execution.
        join: CerKey,
        /// The incoming branch the join did not wait for.
        branch: String,
    },
}

impl fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconcileError::Document(e) => write!(f, "document unreadable: {e}"),
            ReconcileError::MissingFromTrace { position, expected } => write!(
                f,
                "cascade position {position}: document proves {expected} but the trace has no successful hop for it"
            ),
            ReconcileError::UnprovenExecution { position, activity, iter } => write!(
                f,
                "hop position {position}: trace claims {activity}#{iter} succeeded but the document proves no such execution"
            ),
            ReconcileError::OrderMismatch { position, document, trace } => write!(
                f,
                "cascade position {position}: document proves {document} but the trace observed {trace} there"
            ),
            ReconcileError::ParticipantMismatch { key, document, trace } => write!(
                f,
                "{key}: document proves participant '{document}' but the trace attributes the hop to '{trace}'"
            ),
            ReconcileError::TimestampUnwitnessed { key, timestamp } => write!(
                f,
                "{key}: document embeds TFC timestamp {timestamp}ms but no tfc:timestamp span witnessed it"
            ),
            ReconcileError::TimestampMismatch { key, document, trace } => write!(
                f,
                "{key}: document embeds TFC timestamp {document}ms but the trace witnessed {trace}ms"
            ),
            ReconcileError::TimestampOutsideHop { key, witness_us, hop_us } => write!(
                f,
                "{key}: tfc:timestamp witness [{}..{}]µs lies outside its successful hop [{}..{}]µs",
                witness_us.0, witness_us.1, hop_us.0, hop_us.1
            ),
            ReconcileError::CancelledExecution { position, key, trigger } => write!(
                f,
                "cascade position {position}: {key} executed although completion of '{trigger}' had cancelled its region"
            ),
            ReconcileError::JoinMissingBranch { position, join, branch } => write!(
                f,
                "cascade position {position}: join {join} fired without incoming branch '{branch}'"
            ),
        }
    }
}

impl std::error::Error for ReconcileError {}

/// Summary of a successful reconciliation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Proven executions matched one-to-one with successful hop spans.
    pub hops_matched: usize,
    /// Document timestamps matched to `tfc:timestamp` witnesses.
    pub timestamps_witnessed: usize,
    /// Crashed hop attempts in the trace (ignored by the matching).
    pub crashed_attempts: usize,
}

/// Check the observed `trace` against the execution timeline the signed
/// `document` proves. See the module docs for the exact guarantees.
///
/// The document is the oracle: callers that need the oracle itself to be
/// trustworthy should verify it first
/// ([`ProcessStatus::verified_status`] bundles that).
pub fn reconcile(
    trace: &[TraceEvent],
    document: &DraDocument,
) -> Result<ReconcileReport, ReconcileError> {
    let status = ProcessStatus::from_document(document)
        .map_err(|e| ReconcileError::Document(e.to_string()))?;
    let pid = &status.process_id;

    // The cascade itself must respect the definition's join and
    // cancellation semantics: forged instances can reorder or insert CERs
    // the honest scheduler could never have produced.
    check_cascade_semantics(document)?;

    let hops: Vec<&TraceEvent> = trace
        .iter()
        .filter(|e| e.stage == stage::HOP && e.process_id == *pid && e.outcome == OUTCOME_OK)
        .collect();
    let crashed_attempts = trace
        .iter()
        .filter(|e| e.stage == stage::HOP && e.process_id == *pid && e.outcome != OUTCOME_OK)
        .count();

    // Same executions, same order: the trace's successful hops must line up
    // one-to-one with the document's cascade.
    let steps = status.executed.len().max(hops.len());
    for position in 0..steps {
        match (status.executed.get(position), hops.get(position)) {
            (Some(entry), Some(hop)) => {
                if hop.activity != entry.key.activity || hop.iter != entry.key.iter {
                    let witnessed_somewhere = hops
                        .iter()
                        .any(|h| h.activity == entry.key.activity && h.iter == entry.key.iter);
                    if witnessed_somewhere {
                        return Err(ReconcileError::OrderMismatch {
                            position,
                            document: entry.key.clone(),
                            trace: CerKey::new(hop.activity.clone(), hop.iter),
                        });
                    }
                    return Err(ReconcileError::MissingFromTrace {
                        position,
                        expected: entry.key.clone(),
                    });
                }
                if hop.actor != entry.participant {
                    return Err(ReconcileError::ParticipantMismatch {
                        key: entry.key.clone(),
                        document: entry.participant.clone(),
                        trace: hop.actor.clone(),
                    });
                }
            }
            (Some(entry), None) => {
                return Err(ReconcileError::MissingFromTrace {
                    position,
                    expected: entry.key.clone(),
                });
            }
            (None, Some(hop)) => {
                return Err(ReconcileError::UnprovenExecution {
                    position,
                    activity: hop.activity.clone(),
                    iter: hop.iter,
                });
            }
            (None, None) => unreachable!("position < max(len)"),
        }
    }

    // Timestamps within hop bounds: every TFC timestamp the document embeds
    // must have been witnessed by a tfc:timestamp span inside the successful
    // hop that produced it.
    let mut timestamps_witnessed = 0;
    for (entry, hop) in status.executed.iter().zip(&hops) {
        let Some(doc_ts) = entry.timestamp else { continue };
        let witnesses: Vec<&TraceEvent> = trace
            .iter()
            .filter(|e| {
                e.stage == stage::TFC_TIMESTAMP
                    && e.process_id == *pid
                    && e.activity == entry.key.activity
                    && e.iter == entry.key.iter
            })
            .collect();
        let matching: Vec<&&TraceEvent> = witnesses
            .iter()
            .filter(|e| e.attr("ts_ms").and_then(|v| v.parse::<u64>().ok()) == Some(doc_ts))
            .collect();
        if matching.is_empty() {
            return Err(match witnesses.last().and_then(|e| e.attr("ts_ms")?.parse().ok()) {
                Some(trace_ts) => ReconcileError::TimestampMismatch {
                    key: entry.key.clone(),
                    document: doc_ts,
                    trace: trace_ts,
                },
                None => ReconcileError::TimestampUnwitnessed {
                    key: entry.key.clone(),
                    timestamp: doc_ts,
                },
            });
        }
        let in_bounds =
            matching.iter().any(|e| e.start_us >= hop.start_us && e.end_us <= hop.end_us);
        if !in_bounds {
            let w = matching.last().expect("non-empty");
            return Err(ReconcileError::TimestampOutsideHop {
                key: entry.key.clone(),
                witness_us: (w.start_us, w.end_us),
                hop_us: (hop.start_us, hop.end_us),
            });
        }
        timestamps_witnessed += 1;
    }

    Ok(ReconcileReport {
        hops_matched: status.executed.len(),
        timestamps_witnessed,
        crashed_attempts,
    })
}

/// Document-side semantic checks over the cascade: no CER may follow a
/// fired cancellation of its region, AND-joins must have every incoming
/// branch delivered before they fire, and OR-joins must not leave a branch
/// that delivers only after the merge. Amendments are folded in document
/// order, exactly as verification does.
fn check_cascade_semantics(document: &DraDocument) -> Result<(), ReconcileError> {
    use crate::fields::eval_condition;
    use crate::flow::DocFieldReader;
    use crate::model::JoinKind;

    let doc_err = |e: crate::error::WfError| ReconcileError::Document(e.to_string());
    let mut eff_def = document.workflow_definition().map_err(doc_err)?;
    let mut eff_pol = document.security_policy().map_err(doc_err)?;
    let cers = document.cers().map_err(doc_err)?;
    let reader = DocFieldReader::public(document);

    for (idx, cer) in cers.iter().enumerate() {
        if crate::amendment::is_amendment_key(&cer.key) {
            if let Some(delta_el) = cer.result().and_then(|r| r.find_child("Delta")) {
                let delta =
                    crate::amendment::DefinitionDelta::from_xml(delta_el).map_err(doc_err)?;
                let (d, p) = delta.apply(&eff_def, &eff_pol).map_err(doc_err)?;
                eff_def = d;
                eff_pol = p;
            }
            continue;
        }
        let Ok(act) = eff_def.activity(&cer.key.activity) else {
            continue; // unknown activity is a verification failure, not ours
        };

        // executed after its region was cancelled?
        for region in &eff_def.cancellations {
            if !region.region.contains(&cer.key.activity) {
                continue;
            }
            let trigger_completed = cers[..idx].iter().any(|c| c.key.activity == region.trigger);
            if !trigger_completed {
                continue;
            }
            let fired = match &region.condition {
                None => true,
                // unreadable/unproduced guard fields cannot prove a firing
                Some(cond) => eval_condition(cond, &reader).unwrap_or(false),
            };
            if fired {
                return Err(ReconcileError::CancelledExecution {
                    position: idx,
                    key: cer.key.clone(),
                    trigger: region.trigger.clone(),
                });
            }
        }

        // joins must have their branches
        match act.join {
            JoinKind::All => {
                for inc in eff_def.incoming(&cer.key.activity) {
                    let delivered = cers[..idx]
                        .iter()
                        .any(|c| c.key.activity == *inc && c.key.iter >= cer.key.iter);
                    if !delivered {
                        return Err(ReconcileError::JoinMissingBranch {
                            position: idx,
                            join: cer.key.clone(),
                            branch: inc.clone(),
                        });
                    }
                }
            }
            JoinKind::Or => {
                // the synchronizing merge fires only once upstream is
                // quiet: a branch CER appearing *after* the join proves
                // the merge jumped the gun
                for inc in eff_def.incoming(&cer.key.activity) {
                    let before = cers[..idx].iter().any(|c| c.key.activity == *inc);
                    let after = cers[idx + 1..].iter().any(|c| c.key.activity == *inc);
                    if !before && after {
                        return Err(ReconcileError::JoinMissingBranch {
                            position: idx,
                            join: cer.key.clone(),
                            branch: inc.clone(),
                        });
                    }
                }
            }
            JoinKind::Any => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Credentials;
    use crate::model::WorkflowDefinition;
    use crate::policy::SecurityPolicy;
    use dra_obs::event::OUTCOME_CRASH;
    use dra_obs::Tracer;
    use dra_xml::Element;

    /// A two-step document: A#0 by peter (TFC timestamp 100), B#0 by amy
    /// (timestamp 250). Unsigned — reconcile reads structure, not trust.
    fn fixture_doc() -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("rec", "designer")
            .simple_activity("A", "peter", &[])
            .simple_activity("B", "amy", &[])
            .flow("A", "B")
            .flow_end("B")
            .build()
            .unwrap();
        let mut doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pid-r")
                .unwrap();
        for (act, who, ts) in [("A", "peter", "100"), ("B", "amy", "250")] {
            doc.push_cer(
                Element::new("CER")
                    .attr("activity", act)
                    .attr("iter", "0")
                    .attr("participant", who)
                    .attr("preds", "Def")
                    .child(Element::new("Result"))
                    .child(Element::new("Timestamp").attr("time", ts).attr("by", "TFC")),
            )
            .unwrap();
        }
        doc
    }

    fn hop(start: u64, end: u64, actor: &str, act: &str, outcome: &str) -> TraceEvent {
        TraceEvent {
            seq: 0,
            start_us: start,
            end_us: end,
            stage: stage::HOP.into(),
            actor: actor.into(),
            process_id: "pid-r".into(),
            activity: act.into(),
            iter: 0,
            outcome: outcome.into(),
            attrs: vec![],
        }
    }

    fn ts_witness(start: u64, end: u64, act: &str, ts_ms: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            start_us: start,
            end_us: end,
            stage: stage::TFC_TIMESTAMP.into(),
            actor: "TFC".into(),
            process_id: "pid-r".into(),
            activity: act.into(),
            iter: 0,
            outcome: OUTCOME_OK.into(),
            attrs: vec![("ts_ms".into(), ts_ms.to_string()), ("reused".into(), "fresh".into())],
        }
    }

    fn honest_trace() -> Vec<TraceEvent> {
        let t = Tracer::sequential();
        for e in [
            hop(0, 10, "peter", "A", OUTCOME_OK),
            ts_witness(2, 3, "A", 100),
            hop(10, 20, "amy", "B", OUTCOME_OK),
            ts_witness(12, 13, "B", 250),
        ] {
            t.record_event(e);
        }
        // interleave order: keep witnesses inside their hops
        let mut evs = t.events();
        evs.swap(0, 1); // seq order is irrelevant to reconcile; slice order of hops is
        evs.swap(0, 1);
        evs
    }

    #[test]
    fn honest_trace_reconciles() {
        let report = reconcile(&honest_trace(), &fixture_doc()).unwrap();
        assert_eq!(report.hops_matched, 2);
        assert_eq!(report.timestamps_witnessed, 2);
        assert_eq!(report.crashed_attempts, 0);
    }

    #[test]
    fn crashed_attempts_are_ignored() {
        let mut trace = honest_trace();
        trace.insert(0, hop(0, 1, "peter", "A", OUTCOME_CRASH));
        let report = reconcile(&trace, &fixture_doc()).unwrap();
        assert_eq!(report.crashed_attempts, 1);
    }

    #[test]
    fn foreign_process_events_are_ignored() {
        let mut trace = honest_trace();
        let mut alien = hop(0, 1, "zoe", "Z", OUTCOME_OK);
        alien.process_id = "pid-other".into();
        trace.push(alien);
        assert!(reconcile(&trace, &fixture_doc()).is_ok());
    }

    #[test]
    fn reorder_detected() {
        let mut trace = honest_trace();
        // swap the two successful hops
        let (a, b) = (
            trace.iter().position(|e| e.stage == stage::HOP && e.activity == "A").unwrap(),
            trace.iter().position(|e| e.stage == stage::HOP && e.activity == "B").unwrap(),
        );
        trace.swap(a, b);
        let err = reconcile(&trace, &fixture_doc()).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::OrderMismatch {
                position: 0,
                document: CerKey::new("A", 0),
                trace: CerKey::new("B", 0),
            }
        );
        assert!(err.to_string().contains("cascade position 0"));
    }

    #[test]
    fn dropped_hop_detected() {
        let mut trace = honest_trace();
        trace.retain(|e| !(e.stage == stage::HOP && e.activity == "A"));
        let err = reconcile(&trace, &fixture_doc()).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::MissingFromTrace { position: 0, expected: CerKey::new("A", 0) }
        );
    }

    #[test]
    fn forged_participant_detected() {
        let mut trace = honest_trace();
        for e in trace.iter_mut() {
            if e.stage == stage::HOP && e.activity == "B" {
                e.actor = "mallory".into();
            }
        }
        let err = reconcile(&trace, &fixture_doc()).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::ParticipantMismatch {
                key: CerKey::new("B", 0),
                document: "amy".into(),
                trace: "mallory".into(),
            }
        );
    }

    #[test]
    fn unproven_execution_detected() {
        let mut trace = honest_trace();
        trace.push(hop(20, 30, "zoe", "Z", OUTCOME_OK));
        let err = reconcile(&trace, &fixture_doc()).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::UnprovenExecution { position: 2, activity: "Z".into(), iter: 0 }
        );
    }

    #[test]
    fn timestamp_divergence_detected() {
        // wrong value
        let mut trace = honest_trace();
        for e in trace.iter_mut() {
            if e.stage == stage::TFC_TIMESTAMP && e.activity == "A" {
                e.attrs[0].1 = "101".into();
            }
        }
        assert_eq!(
            reconcile(&trace, &fixture_doc()).unwrap_err(),
            ReconcileError::TimestampMismatch {
                key: CerKey::new("A", 0),
                document: 100,
                trace: 101
            }
        );

        // witness missing entirely
        let mut trace = honest_trace();
        trace.retain(|e| !(e.stage == stage::TFC_TIMESTAMP && e.activity == "B"));
        assert_eq!(
            reconcile(&trace, &fixture_doc()).unwrap_err(),
            ReconcileError::TimestampUnwitnessed { key: CerKey::new("B", 0), timestamp: 250 }
        );

        // witness outside the hop's virtual-time window
        let mut trace = honest_trace();
        for e in trace.iter_mut() {
            if e.stage == stage::TFC_TIMESTAMP && e.activity == "A" {
                e.start_us = 50;
                e.end_us = 60;
            }
        }
        assert_eq!(
            reconcile(&trace, &fixture_doc()).unwrap_err(),
            ReconcileError::TimestampOutsideHop {
                key: CerKey::new("A", 0),
                witness_us: (50, 60),
                hop_us: (0, 10),
            }
        );
    }

    /// Build an unsigned structural document for `def` with the given
    /// cascade of `(activity, iter)` CERs (participants from the def).
    fn structural_doc(def: &WorkflowDefinition, cers: &[(&str, u32)]) -> DraDocument {
        let designer = Credentials::from_seed("designer", "d");
        let mut doc =
            DraDocument::new_initial_with_pid(def, &SecurityPolicy::public(), &designer, "pid-r")
                .unwrap();
        for (act, iter) in cers {
            let who = def.activity(act).unwrap().participant.clone();
            doc.push_cer(
                Element::new("CER")
                    .attr("activity", *act)
                    .attr("iter", iter.to_string())
                    .attr("participant", who)
                    .attr("preds", "Def")
                    .child(Element::new("Result")),
            )
            .unwrap();
        }
        doc
    }

    fn cancel_def() -> WorkflowDefinition {
        WorkflowDefinition::builder("cx", "designer")
            .simple_activity("A", "peter", &[])
            .simple_activity("B", "amy", &["x"])
            .simple_activity("C", "cleo", &["y"])
            .activity(crate::model::Activity {
                id: "J".into(),
                participant: "june".into(),
                join: crate::model::JoinKind::Or,
                requests: vec![],
                responses: vec![],
            })
            .flow("A", "B")
            .flow("A", "C")
            .flow("B", "J")
            .flow("C", "J")
            .flow_end("J")
            .cancel_on("B", &["C"])
            .build()
            .unwrap()
    }

    #[test]
    fn forged_cancelled_execution_detected() {
        // B completes (cancelling C), yet a C CER appears afterwards.
        let doc = structural_doc(&cancel_def(), &[("A", 0), ("B", 0), ("C", 0), ("J", 0)]);
        let err = reconcile(&[], &doc).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::CancelledExecution {
                position: 2,
                key: CerKey::new("C", 0),
                trigger: "B".into(),
            }
        );
        assert!(err.to_string().contains("cancelled its region"), "{err}");
    }

    #[test]
    fn honest_cancellation_order_reconciles_structurally() {
        // C completed before the trigger: legitimate — then B cancels
        // nothing pending, and the merge fires with both branches in.
        let doc = structural_doc(&cancel_def(), &[("A", 0), ("C", 0), ("B", 0), ("J", 0)]);
        // trace empty => MissingFromTrace, but the semantic pass must be
        // clean: check it directly by expecting the *trace* error.
        let err = reconcile(&[], &doc).unwrap_err();
        assert!(matches!(err, ReconcileError::MissingFromTrace { position: 0, .. }), "{err}");
    }

    #[test]
    fn phantom_branch_or_join_detected() {
        // J fires after only B, while C's CER turns up later: the merge
        // fired while a branch was still to deliver.
        let def = cancel_def();
        let doc = structural_doc(&def, &[("A", 0), ("B", 0), ("J", 0), ("C", 0)]);
        // The scan is positional: J at position 2 trips the join law
        // before C at position 3 would trip the cancellation law.
        let err = reconcile(&[], &doc).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::JoinMissingBranch {
                position: 2,
                join: CerKey::new("J", 0),
                branch: "C".into(),
            }
        );
    }

    #[test]
    fn and_join_missing_branch_detected() {
        let def = WorkflowDefinition::builder("aj", "designer")
            .simple_activity("A", "peter", &[])
            .simple_activity("B1", "amy", &[])
            .simple_activity("B2", "bob", &[])
            .activity(crate::model::Activity {
                id: "C".into(),
                participant: "cleo".into(),
                join: crate::model::JoinKind::All,
                requests: vec![],
                responses: vec![],
            })
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_end("C")
            .build()
            .unwrap();
        let doc = structural_doc(&def, &[("A", 0), ("B1", 0), ("C", 0), ("B2", 0)]);
        let err = reconcile(&[], &doc).unwrap_err();
        assert_eq!(
            err,
            ReconcileError::JoinMissingBranch {
                position: 2,
                join: CerKey::new("C", 0),
                branch: "B2".into(),
            }
        );
    }

    #[test]
    fn empty_trace_empty_document_reconciles() {
        let designer = Credentials::from_seed("designer", "d");
        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("A", "p", &[])
            .flow_end("A")
            .build()
            .unwrap();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "x")
                .unwrap();
        let report = reconcile(&[], &doc).unwrap();
        assert_eq!(report, ReconcileReport::default());
    }
}
