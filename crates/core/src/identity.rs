//! Participants, key material and the PKI directory.
//!
//! Every actor in a DRA4WfMS deployment — workflow designers, activity
//! participants, TFC servers, portal servers — owns two keypairs: an Ed25519
//! signing key (nonrepudiation cascade) and an X25519 encryption key
//! (element-wise encryption). The [`Directory`] is the public half: the
//! cross-enterprise trust anchor that every AEA consults to verify embedded
//! signatures and address key wraps. The paper assumes such a PKI
//! ("the public keys of users or groups"); here it is an explicit value that
//! travels with the deployment configuration.

use crate::error::{WfError, WfResult};
use dra_crypto::ed25519::{Keypair, PublicKey};
use dra_crypto::sha2::Sha256;
use dra_crypto::x25519::{X25519PublicKey, X25519Secret};
use std::collections::BTreeMap;

/// The public identity of an actor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Identity {
    /// Logical name, unique within a deployment (e.g. "peter", "TFC").
    pub name: String,
    /// Ed25519 verification key.
    pub sign: PublicKey,
    /// X25519 encryption key.
    pub enc: X25519PublicKey,
}

/// The secret key material of an actor.
#[derive(Clone)]
pub struct Credentials {
    /// Logical name.
    pub name: String,
    /// Ed25519 signing keypair.
    pub sign: Keypair,
    /// X25519 decryption secret.
    pub enc: X25519Secret,
}

impl std::fmt::Debug for Credentials {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Credentials").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Credentials {
    /// Generate fresh random credentials for `name`.
    pub fn generate(name: impl Into<String>) -> Credentials {
        Credentials { name: name.into(), sign: Keypair::generate(), enc: X25519Secret::generate() }
    }

    /// Deterministic credentials derived from a seed string — used by tests,
    /// examples and reproducible benchmarks. The two keys are domain-
    /// separated hashes of the seed.
    pub fn from_seed(name: impl Into<String>, seed: &str) -> Credentials {
        let name = name.into();
        let mut h = Sha256::new();
        h.update(b"dra4wfms.identity.sign");
        h.update(seed.as_bytes());
        let sign_seed = h.finalize();
        let mut h = Sha256::new();
        h.update(b"dra4wfms.identity.enc");
        h.update(seed.as_bytes());
        let enc_seed = h.finalize();
        Credentials {
            name,
            sign: Keypair::from_seed(sign_seed),
            enc: X25519Secret::from_bytes(enc_seed),
        }
    }

    /// The public identity matching these credentials.
    pub fn identity(&self) -> Identity {
        Identity { name: self.name.clone(), sign: self.sign.public, enc: self.enc.public_key() }
    }
}

/// The deployment-wide directory of public identities (the PKI view),
/// including named **groups** — the paper's element-wise encryption
/// addresses "different public keys of users or groups" (§2.3.1); a group
/// audience expands to every member's key at encryption time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Directory {
    entries: BTreeMap<String, Identity>,
    groups: BTreeMap<String, Vec<String>>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Register an identity (replaces an existing entry of the same name).
    pub fn register(&mut self, id: Identity) {
        self.entries.insert(id.name.clone(), id);
    }

    /// Build a directory from a set of credentials' public halves.
    pub fn from_credentials<'a>(creds: impl IntoIterator<Item = &'a Credentials>) -> Directory {
        let mut d = Directory::new();
        for c in creds {
            d.register(c.identity());
        }
        d
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> WfResult<&Identity> {
        self.entries.get(name).ok_or_else(|| WfError::UnknownIdentity(name.to_string()))
    }

    /// Look up the signing key owner by public key (reverse lookup).
    pub fn name_of_signer(&self, key: &PublicKey) -> Option<&str> {
        self.entries.values().find(|id| id.sign == *key).map(|id| id.name.as_str())
    }

    /// All registered names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of registered identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Register a named group. Member names must already be registered;
    /// unknown members are rejected so a typo cannot silently shrink an
    /// audience.
    pub fn register_group(&mut self, name: impl Into<String>, members: &[&str]) -> WfResult<()> {
        let name = name.into();
        if self.entries.contains_key(&name) {
            return Err(WfError::Policy(format!(
                "group '{name}' collides with a registered identity"
            )));
        }
        let mut list = Vec::with_capacity(members.len());
        for m in members {
            self.get(m)?;
            list.push(m.to_string());
        }
        self.groups.insert(name, list);
        Ok(())
    }

    /// Expand a reader name to concrete identities: a group expands to its
    /// members, an individual to itself.
    pub fn expand(&self, name: &str) -> WfResult<Vec<&Identity>> {
        if let Some(members) = self.groups.get(name) {
            return members.iter().map(|m| self.get(m)).collect();
        }
        Ok(vec![self.get(name)?])
    }

    /// True when `reader` covers `participant`: either the same name or a
    /// group containing it.
    pub fn covers(&self, reader: &str, participant: &str) -> bool {
        if reader == participant {
            return true;
        }
        self.groups.get(reader).is_some_and(|members| members.iter().any(|m| m == participant))
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_credentials_are_deterministic() {
        let a = Credentials::from_seed("peter", "seed-1");
        let b = Credentials::from_seed("peter", "seed-1");
        assert_eq!(a.identity(), b.identity());
        let c = Credentials::from_seed("peter", "seed-2");
        assert_ne!(a.identity().sign, c.identity().sign);
        assert_ne!(a.identity().enc, c.identity().enc);
    }

    #[test]
    fn sign_and_enc_keys_are_independent() {
        let a = Credentials::from_seed("x", "s");
        // the signing seed and encryption seed must differ (domain separation)
        assert_ne!(a.sign.secret.seed(), a.enc.as_bytes());
    }

    #[test]
    fn directory_lookup() {
        let peter = Credentials::from_seed("peter", "p");
        let amy = Credentials::from_seed("amy", "a");
        let dir = Directory::from_credentials([&peter, &amy]);
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.get("peter").unwrap().sign, peter.sign.public);
        assert!(matches!(dir.get("mallory"), Err(WfError::UnknownIdentity(_))));
    }

    #[test]
    fn reverse_signer_lookup() {
        let peter = Credentials::from_seed("peter", "p");
        let dir = Directory::from_credentials([&peter]);
        assert_eq!(dir.name_of_signer(&peter.sign.public), Some("peter"));
        let other = Credentials::from_seed("x", "y");
        assert_eq!(dir.name_of_signer(&other.sign.public), None);
    }

    #[test]
    fn groups_expand_to_members() {
        let a = Credentials::from_seed("alice", "a");
        let b = Credentials::from_seed("bob", "b");
        let mut dir = Directory::from_credentials([&a, &b]);
        dir.register_group("finance", &["alice", "bob"]).unwrap();
        let ids = dir.expand("finance").unwrap();
        assert_eq!(ids.len(), 2);
        assert!(dir.covers("finance", "alice"));
        assert!(dir.covers("finance", "bob"));
        assert!(!dir.covers("finance", "carol"));
        assert!(dir.covers("alice", "alice"));
        // an individual expands to itself
        assert_eq!(dir.expand("alice").unwrap().len(), 1);
    }

    #[test]
    fn group_with_unknown_member_rejected() {
        let a = Credentials::from_seed("alice", "a");
        let mut dir = Directory::from_credentials([&a]);
        assert!(dir.register_group("g", &["alice", "ghost"]).is_err());
    }

    #[test]
    fn group_name_cannot_shadow_identity() {
        let a = Credentials::from_seed("alice", "a");
        let mut dir = Directory::from_credentials([&a]);
        assert!(dir.register_group("alice", &[]).is_err());
    }

    #[test]
    fn register_replaces() {
        let mut dir = Directory::new();
        let v1 = Credentials::from_seed("p", "1");
        let v2 = Credentials::from_seed("p", "2");
        dir.register(v1.identity());
        dir.register(v2.identity());
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.get("p").unwrap().sign, v2.sign.public);
    }
}
