//! The DRA4WfMS document: structure, construction, parsing and the
//! canonical byte streams covered by the cascade signatures.
//!
//! Mirrors Fig. 8 of the paper — a document has three sections:
//!
//! ```xml
//! <DRA4WfMS>
//!   <Header>                     unique process id (replay defense), schema
//!   <ApplicationDefinition>      the secured initial document [Def]ee,{[Def]ee}Pri(A0)
//!     <WorkflowDefinition/>
//!     <SecurityDefinition/>
//!     <Signature/>               the workflow designer's signature
//!   </ApplicationDefinition>
//!   <ActivityResults>            one CER per executed activity iteration
//!     <CER activity="A1" iter="0" participant="peter" preds="Def">
//!       <Result/>                element-wise encrypted responses (basic model)
//!       <TfcSealed/>             result sealed to the TFC (advanced model)
//!       <Timestamp/>             embedded by the TFC (advanced model)
//!       <Signature/>             participant signature (the cascade)
//!       <Signature/>             TFC signature (advanced model)
//!     </CER>
//!   </ActivityResults>
//! </DRA4WfMS>
//! ```
//!
//! A CER's participant signature covers `[Header, body, signatures of all
//! predecessor CERs]`, where `body` is `<Result>` in the basic model and
//! `<TfcSealed>` in the advanced model. Covering the header binds every
//! signature to the unique process id (replay defense); covering predecessor
//! signatures builds the nonrepudiation cascade of §2.3.2.

use crate::error::{WfError, WfResult};
use crate::identity::Credentials;
use crate::model::WorkflowDefinition;
use crate::policy::SecurityPolicy;
use dra_xml::canon::canonicalize_all;
use dra_xml::sig::{sign_detached, SIGNATURE};
use dra_xml::{parse, Element};

/// Schema tag written into every document header.
pub const SCHEMA: &str = "dra4wfms-1.0";

/// Identifies one executed activity iteration — `X''_Ai(k)` in the paper.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CerKey {
    /// Activity id.
    pub activity: String,
    /// Iteration (0-based; incremented on each loop pass).
    pub iter: u32,
}

impl CerKey {
    /// Convenience constructor.
    pub fn new(activity: impl Into<String>, iter: u32) -> CerKey {
        CerKey { activity: activity.into(), iter }
    }

    /// Parse the `"A1#0"` form.
    pub fn parse(s: &str) -> Option<CerKey> {
        let (a, i) = s.split_once('#')?;
        Some(CerKey { activity: a.to_string(), iter: i.parse().ok()? })
    }
}

impl std::fmt::Display for CerKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.activity, self.iter)
    }
}

/// A node of the signature cascade: either the designer's signature over the
/// application definition ("Def", called CER(A0) by the paper) or a CER.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredRef {
    /// The application-definition signature (the cascade root).
    Def,
    /// A characteristic execution result.
    Cer(CerKey),
}

impl std::fmt::Display for PredRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredRef::Def => write!(f, "Def"),
            PredRef::Cer(k) => write!(f, "{k}"),
        }
    }
}

impl PredRef {
    /// Parse the `"Def"` / `"A1#0"` forms.
    pub fn parse(s: &str) -> Option<PredRef> {
        if s == "Def" {
            Some(PredRef::Def)
        } else {
            CerKey::parse(s).map(PredRef::Cer)
        }
    }
}

/// Encode a predecessor list as a `preds` attribute value.
pub fn preds_to_attr(preds: &[PredRef]) -> String {
    preds.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",")
}

/// Decode a `preds` attribute value.
pub fn preds_from_attr(s: &str) -> WfResult<Vec<PredRef>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| PredRef::parse(p).ok_or_else(|| WfError::Malformed(format!("bad pred '{p}'"))))
        .collect()
}

/// A borrowed view of one `<CER>` element.
#[derive(Clone, Debug)]
pub struct CerView<'a> {
    /// The underlying element.
    pub element: &'a Element,
    /// Activity + iteration.
    pub key: CerKey,
    /// The executing participant's name.
    pub participant: String,
    /// Cascade predecessors of this CER's signature.
    pub preds: Vec<PredRef>,
}

impl<'a> CerView<'a> {
    fn from_element(el: &'a Element) -> WfResult<CerView<'a>> {
        let activity = el
            .get_attr("activity")
            .ok_or_else(|| WfError::Malformed("CER missing @activity".into()))?;
        let iter: u32 = el
            .get_attr("iter")
            .ok_or_else(|| WfError::Malformed("CER missing @iter".into()))?
            .parse()
            .map_err(|_| WfError::Malformed("CER @iter not a number".into()))?;
        let participant = el
            .get_attr("participant")
            .ok_or_else(|| WfError::Malformed("CER missing @participant".into()))?;
        let preds = preds_from_attr(el.get_attr("preds").unwrap_or_default())?;
        Ok(CerView {
            element: el,
            key: CerKey::new(activity, iter),
            participant: participant.to_string(),
            preds,
        })
    }

    /// The `<Result>` element (present in basic-model CERs and in
    /// advanced-model CERs after TFC processing).
    pub fn result(&self) -> Option<&'a Element> {
        self.element.find_child("Result")
    }

    /// The `<TfcSealed>` element (advanced model).
    pub fn tfc_sealed(&self) -> Option<&'a Element> {
        self.element.find_child("TfcSealed")
    }

    /// The `<Timestamp>` element (advanced model, embedded by the TFC).
    pub fn timestamp(&self) -> Option<&'a Element> {
        self.element.find_child("Timestamp")
    }

    /// Timestamp value in milliseconds, if present.
    pub fn timestamp_millis(&self) -> Option<u64> {
        self.timestamp()?.get_attr("time")?.parse().ok()
    }

    /// All `<Signature>` elements in document order (participant first,
    /// then, in the advanced model, the TFC's).
    pub fn signatures(&self) -> Vec<&'a Element> {
        self.element.find_children(SIGNATURE).collect()
    }

    /// The participant's signature element.
    pub fn participant_signature(&self) -> WfResult<&'a Element> {
        self.signatures()
            .first()
            .copied()
            .ok_or_else(|| WfError::Malformed(format!("CER {} has no signature", self.key)))
    }

    /// The TFC's signature element, when present.
    pub fn tfc_signature(&self) -> Option<&'a Element> {
        self.signatures().get(1).copied()
    }
}

/// A DRA4WfMS document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DraDocument {
    /// The `<DRA4WfMS>` root element.
    pub root: Element,
}

impl DraDocument {
    /// Build the secured initial document `X''_A0 = [ [Def]ee, {[Def]ee}Pri(A0) ]`.
    ///
    /// The designer's credentials must match `def.designer`; the embedded
    /// signature covers the header (process id) and both definition parts.
    pub fn new_initial(
        def: &WorkflowDefinition,
        policy: &SecurityPolicy,
        designer: &Credentials,
    ) -> WfResult<DraDocument> {
        def.validate()?;
        if designer.name != def.designer {
            return Err(WfError::NotParticipant {
                expected: def.designer.clone(),
                actual: designer.name.clone(),
            });
        }
        let mut pid = [0u8; 16];
        dra_crypto::random_bytes(&mut pid);
        Self::new_initial_with_pid(def, policy, designer, &dra_crypto::hex::encode(&pid))
    }

    /// Deterministic variant taking an explicit process id (tests, benches).
    pub fn new_initial_with_pid(
        def: &WorkflowDefinition,
        policy: &SecurityPolicy,
        designer: &Credentials,
        process_id: &str,
    ) -> WfResult<DraDocument> {
        let header = Element::new("Header")
            .child(Element::new("ProcessId").text(process_id))
            .child(Element::new("Schema").text(SCHEMA));
        let def_el = def.to_xml();
        let pol_el = policy.to_xml();
        let signed = canonicalize_all([&header, &def_el, &pol_el]);
        let sig = sign_detached(&designer.sign, &signed, "Def");
        let app = Element::new("ApplicationDefinition").child(def_el).child(pol_el).child(sig);
        let root = Element::new("DRA4WfMS")
            .child(header)
            .child(app)
            .child(Element::new("ActivityResults"));
        Ok(DraDocument { root })
    }

    /// Parse a document from its wire form.
    pub fn parse(xml: &str) -> WfResult<DraDocument> {
        let root = parse(xml).map_err(|e| WfError::Parse(e.to_string()))?;
        let doc = DraDocument { root };
        // structural sanity
        doc.header()?;
        doc.process_id()?;
        doc.app_definition()?;
        doc.results()?;
        Ok(doc)
    }

    /// Serialize to the wire form (the bytes whose length is the paper's Σ).
    pub fn to_xml_string(&self) -> String {
        dra_xml::writer::to_string(&self.root)
    }

    /// Document size in bytes — the Σ column of Tables 1 and 2.
    pub fn size_bytes(&self) -> usize {
        self.to_xml_string().len()
    }

    /// The `<Header>` element.
    pub fn header(&self) -> WfResult<&Element> {
        self.root.find_child("Header").ok_or_else(|| WfError::Malformed("missing Header".into()))
    }

    /// The unique process id (replay-attack defense, §2).
    pub fn process_id(&self) -> WfResult<String> {
        Ok(self
            .header()?
            .find_child("ProcessId")
            .ok_or_else(|| WfError::Malformed("missing ProcessId".into()))?
            .text_content())
    }

    /// The `<ApplicationDefinition>` element.
    pub fn app_definition(&self) -> WfResult<&Element> {
        self.root
            .find_child("ApplicationDefinition")
            .ok_or_else(|| WfError::Malformed("missing ApplicationDefinition".into()))
    }

    /// Parse the embedded workflow definition.
    pub fn workflow_definition(&self) -> WfResult<WorkflowDefinition> {
        let el = self
            .app_definition()?
            .find_child("WorkflowDefinition")
            .ok_or_else(|| WfError::Malformed("missing WorkflowDefinition".into()))?;
        WorkflowDefinition::from_xml(el)
    }

    /// Parse the embedded security policy.
    pub fn security_policy(&self) -> WfResult<SecurityPolicy> {
        let el = self
            .app_definition()?
            .find_child("SecurityDefinition")
            .ok_or_else(|| WfError::Malformed("missing SecurityDefinition".into()))?;
        SecurityPolicy::from_xml(el)
    }

    /// The designer's signature element (the cascade root, "Def").
    pub fn designer_signature(&self) -> WfResult<&Element> {
        self.app_definition()?
            .find_child(SIGNATURE)
            .ok_or_else(|| WfError::Malformed("missing designer Signature".into()))
    }

    /// The canonical bytes the designer's signature covers.
    pub fn definition_bytes(&self) -> WfResult<Vec<u8>> {
        let header = self.header()?;
        let app = self.app_definition()?;
        let def = app
            .find_child("WorkflowDefinition")
            .ok_or_else(|| WfError::Malformed("missing WorkflowDefinition".into()))?;
        let pol = app
            .find_child("SecurityDefinition")
            .ok_or_else(|| WfError::Malformed("missing SecurityDefinition".into()))?;
        Ok(canonicalize_all([header, def, pol]))
    }

    /// The `<ActivityResults>` element.
    pub fn results(&self) -> WfResult<&Element> {
        self.root
            .find_child("ActivityResults")
            .ok_or_else(|| WfError::Malformed("missing ActivityResults".into()))
    }

    /// All CERs in document order — `Set_of_CER(d)` in the paper.
    pub fn cers(&self) -> WfResult<Vec<CerView<'_>>> {
        self.results()?.find_children("CER").map(CerView::from_element).collect()
    }

    /// Find one CER by key.
    pub fn find_cer(&self, key: &CerKey) -> WfResult<Option<CerView<'_>>> {
        Ok(self.cers()?.into_iter().find(|c| c.key == *key))
    }

    /// Latest executed iteration of `activity`, if any.
    pub fn latest_iter(&self, activity: &str) -> WfResult<Option<u32>> {
        Ok(self.cers()?.iter().filter(|c| c.key.activity == activity).map(|c| c.key.iter).max())
    }

    /// Append a finished CER element.
    pub fn push_cer(&mut self, cer: Element) -> WfResult<()> {
        if cer.name != "CER" {
            return Err(WfError::Malformed("push_cer expects a <CER>".into()));
        }
        let results = self
            .root
            .find_child_mut("ActivityResults")
            .ok_or_else(|| WfError::Malformed("missing ActivityResults".into()))?;
        results.push_child(cer);
        Ok(())
    }

    /// Mutable access to the CER element with the given key (latest match
    /// wins, as loop iterations append). Drops the canon memos along the
    /// path so later canonicalization sees the mutation.
    pub fn find_cer_element_mut(&mut self, key: &CerKey) -> WfResult<Option<&mut Element>> {
        let results = self
            .root
            .find_child_mut("ActivityResults")
            .ok_or_else(|| WfError::Malformed("missing ActivityResults".into()))?;
        let iter_s = key.iter.to_string();
        Ok(results.children.iter_mut().rev().find_map(|n| match n {
            dra_xml::Node::Element(e)
                if e.name == "CER"
                    && e.get_attr("activity") == Some(key.activity.as_str())
                    && e.get_attr("iter") == Some(iter_s.as_str()) =>
            {
                e.invalidate_canon();
                Some(e)
            }
            _ => None,
        }))
    }

    /// Resolve the `<Signature>` elements a cascade signature must cover for
    /// the given predecessor list: for `Def` the designer's signature, for a
    /// CER every signature embedded in it (participant + TFC).
    pub fn pred_signature_elements(&self, preds: &[PredRef]) -> WfResult<Vec<&Element>> {
        let mut out = Vec::new();
        for p in preds {
            match p {
                PredRef::Def => out.push(self.designer_signature()?),
                PredRef::Cer(k) => {
                    let cer = self
                        .find_cer(k)?
                        .ok_or_else(|| WfError::Malformed(format!("pred CER {k} not found")))?;
                    let sigs = cer.signatures();
                    if sigs.is_empty() {
                        return Err(WfError::Malformed(format!("pred CER {k} unsigned")));
                    }
                    out.extend(sigs);
                }
            }
        }
        Ok(out)
    }

    /// The canonical bytes a CER's participant signature covers:
    /// `[Header, body, predecessor signatures…]`.
    pub fn cascade_bytes(&self, body: &Element, preds: &[PredRef]) -> WfResult<Vec<u8>> {
        let header = self.header()?;
        let mut parts: Vec<&Element> = vec![header, body];
        parts.extend(self.pred_signature_elements(preds)?);
        Ok(canonicalize_all(parts))
    }

    /// Compute the cascade predecessors for executing `activity` now:
    /// the latest CER of every control-flow predecessor that has executed,
    /// or `[Def]` when none has (the first activity). If the document
    /// carries dynamic amendments (see [`crate::amendment`]), the latest
    /// amendment CER is always covered too — a participant signs the rules
    /// in force at execution time, so stripping an amendment afterwards
    /// breaks the cascade.
    pub fn compute_preds(
        &self,
        def: &WorkflowDefinition,
        activity: &str,
    ) -> WfResult<Vec<PredRef>> {
        let mut preds = Vec::new();
        for inc in def.incoming(activity) {
            if let Some(iter) = self.latest_iter(inc)? {
                preds.push(PredRef::Cer(CerKey::new(inc.clone(), iter)));
            }
        }
        if let Some(iter) = self.latest_iter(crate::amendment::AMEND_PREFIX)? {
            preds.push(PredRef::Cer(CerKey::new(crate::amendment::AMEND_PREFIX.to_string(), iter)));
        }
        if preds.is_empty() {
            preds.push(PredRef::Def);
        }
        preds.sort();
        preds.dedup();
        Ok(preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Condition;
    use dra_xml::sig::verify_detached;

    fn fixture() -> (WorkflowDefinition, SecurityPolicy, Credentials) {
        let def = WorkflowDefinition::builder("order", "designer")
            .simple_activity("A", "peter", &["decision"])
            .simple_activity("B", "amy", &["sign-off"])
            .flow("A", "B")
            .flow_if("B", "A", Condition::field_equals("B", "sign-off", "reject"))
            .flow_end_if("B", Condition::field_not_equals("B", "sign-off", "reject"))
            .build()
            .unwrap();
        let policy = SecurityPolicy::builder().restrict("A", "decision", &["amy"]).build();
        let designer = Credentials::from_seed("designer", "d");
        (def, policy, designer)
    }

    #[test]
    fn initial_document_structure() {
        let (def, policy, designer) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &policy, &designer, "pid-1").unwrap();
        assert_eq!(doc.process_id().unwrap(), "pid-1");
        assert!(doc.cers().unwrap().is_empty());
        assert_eq!(doc.workflow_definition().unwrap(), def);
        assert_eq!(doc.security_policy().unwrap(), policy);
    }

    #[test]
    fn designer_signature_verifies() {
        let (def, policy, designer) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &policy, &designer, "pid-1").unwrap();
        let bytes = doc.definition_bytes().unwrap();
        let signer = verify_detached(doc.designer_signature().unwrap(), &bytes, None).unwrap();
        assert_eq!(signer, designer.sign.public);
    }

    #[test]
    fn wrong_designer_rejected() {
        let (def, policy, _) = fixture();
        let mallory = Credentials::from_seed("mallory", "m");
        assert!(matches!(
            DraDocument::new_initial(&def, &policy, &mallory),
            Err(WfError::NotParticipant { .. })
        ));
    }

    #[test]
    fn random_process_ids_differ() {
        let (def, policy, designer) = fixture();
        let d1 = DraDocument::new_initial(&def, &policy, &designer).unwrap();
        let d2 = DraDocument::new_initial(&def, &policy, &designer).unwrap();
        assert_ne!(d1.process_id().unwrap(), d2.process_id().unwrap());
    }

    #[test]
    fn parse_roundtrip() {
        let (def, policy, designer) = fixture();
        let doc = DraDocument::new_initial_with_pid(&def, &policy, &designer, "pid-2").unwrap();
        let wire = doc.to_xml_string();
        let parsed = DraDocument::parse(&wire).unwrap();
        assert_eq!(parsed.process_id().unwrap(), "pid-2");
        // signature still verifies against re-canonicalized bytes
        let bytes = parsed.definition_bytes().unwrap();
        assert!(verify_detached(parsed.designer_signature().unwrap(), &bytes, None).is_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DraDocument::parse("<NotADoc/>").is_err());
        assert!(DraDocument::parse("not xml at all").is_err());
        assert!(DraDocument::parse("<DRA4WfMS/>").is_err(), "missing sections");
    }

    #[test]
    fn cer_key_parsing() {
        assert_eq!(CerKey::parse("A1#3"), Some(CerKey::new("A1", 3)));
        assert_eq!(CerKey::parse("A1"), None);
        assert_eq!(CerKey::parse("A1#x"), None);
        assert_eq!(CerKey::new("B", 2).to_string(), "B#2");
    }

    #[test]
    fn preds_attr_roundtrip() {
        let preds = vec![
            PredRef::Def,
            PredRef::Cer(CerKey::new("A", 0)),
            PredRef::Cer(CerKey::new("B2", 1)),
        ];
        let attr = preds_to_attr(&preds);
        assert_eq!(attr, "Def,A#0,B2#1");
        assert_eq!(preds_from_attr(&attr).unwrap(), preds);
        assert!(preds_from_attr("garbage!").is_err());
        assert_eq!(preds_from_attr("").unwrap(), Vec::<PredRef>::new());
    }

    #[test]
    fn compute_preds_initial_and_loop() {
        let (def, policy, designer) = fixture();
        let mut doc = DraDocument::new_initial_with_pid(&def, &policy, &designer, "pid-3").unwrap();
        // Before any execution: first activity's preds = [Def].
        assert_eq!(doc.compute_preds(&def, "A").unwrap(), vec![PredRef::Def]);
        // Simulate A#0 executed (structure only, no signature needed here).
        doc.push_cer(
            Element::new("CER")
                .attr("activity", "A")
                .attr("iter", "0")
                .attr("participant", "peter")
                .attr("preds", "Def"),
        )
        .unwrap();
        assert_eq!(doc.compute_preds(&def, "B").unwrap(), vec![PredRef::Cer(CerKey::new("A", 0))]);
        // Simulate B#0 executed; loop back to A: pred is B#0.
        doc.push_cer(
            Element::new("CER")
                .attr("activity", "B")
                .attr("iter", "0")
                .attr("participant", "amy")
                .attr("preds", "A#0"),
        )
        .unwrap();
        assert_eq!(doc.compute_preds(&def, "A").unwrap(), vec![PredRef::Cer(CerKey::new("B", 0))]);
        assert_eq!(doc.latest_iter("A").unwrap(), Some(0));
        assert_eq!(doc.latest_iter("ZZ").unwrap(), None);
    }

    #[test]
    fn push_cer_rejects_non_cer() {
        let (def, policy, designer) = fixture();
        let mut doc = DraDocument::new_initial_with_pid(&def, &policy, &designer, "pid-4").unwrap();
        assert!(doc.push_cer(Element::new("NotCer")).is_err());
    }
}
