//! Building and reading `<Result>` elements: per-field element-wise
//! encryption according to the security policy.
//!
//! A result carries one entry per response field. Public fields are stored
//! as plaintext `<Field>` elements; restricted fields are wrapped in
//! `<EncryptedData>` addressed to the resolved audience plus the producing
//! participant. Conditional audiences are resolved at encryption time by
//! whoever holds enough keys to evaluate the predicate — the executing AEA
//! in the basic model, the TFC server in the advanced model.

use crate::error::{WfError, WfResult};
use crate::identity::{Credentials, Directory};
use crate::model::Condition;
use crate::policy::{Readers, SecurityPolicy};
use dra_xml::enc::{decrypt_element, is_encrypted, recipients_of, Recipient};
use dra_xml::{encrypt_element, Element};

/// Anything that can provide plaintext field values for condition
/// evaluation: an AEA reading the document with its own keys, the TFC
/// server, or a test harness.
pub trait FieldReader {
    /// The latest value of `activity.field`.
    ///
    /// * `Ok(Some(v))` — readable, value `v`
    /// * `Ok(None)` — the activity has not produced the field yet
    /// * `Err(FieldNotReadable)` — present but encrypted to others
    fn read_field(&self, activity: &str, field: &str) -> WfResult<Option<String>>;
}

/// Evaluate a condition through a [`FieldReader`].
pub fn eval_condition(c: &Condition, reader: &dyn FieldReader) -> WfResult<bool> {
    match reader.read_field(&c.activity, &c.field)? {
        Some(v) => Ok(c.matches(&v)),
        None => Err(WfError::Flow(format!(
            "condition references '{}.{}' which has not been produced",
            c.activity, c.field
        ))),
    }
}

/// A fully resolved audience.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolvedReaders {
    /// Plaintext.
    Everyone,
    /// Named recipients.
    Names(Vec<String>),
}

/// Resolve an audience rule, evaluating conditional rules via `reader`.
pub fn resolve_readers(readers: &Readers, reader: &dyn FieldReader) -> WfResult<ResolvedReaders> {
    match readers {
        Readers::Everyone => Ok(ResolvedReaders::Everyone),
        Readers::Only(names) => Ok(ResolvedReaders::Names(names.clone())),
        Readers::Conditional { condition, then_readers, else_readers } => {
            if eval_condition(condition, reader)? {
                Ok(ResolvedReaders::Names(then_readers.clone()))
            } else {
                Ok(ResolvedReaders::Names(else_readers.clone()))
            }
        }
    }
}

/// Build a `<Result>` element for `activity`, encrypting each response field
/// per `policy`. `author` is always added to restricted audiences so a
/// participant can re-read what they produced.
pub fn build_result_element(
    activity: &str,
    responses: &[(String, String)],
    policy: &SecurityPolicy,
    directory: &Directory,
    author: &str,
    reader: &dyn FieldReader,
) -> WfResult<Element> {
    let mut result = Element::new("Result");
    for (name, value) in responses {
        let field_el = Element::new("Field").attr("name", name.clone()).text(value.clone());
        match resolve_readers(policy.readers_for(activity, name), reader)? {
            ResolvedReaders::Everyone => result.push_child(field_el),
            ResolvedReaders::Names(mut names) => {
                if !names.iter().any(|n| n == author) {
                    names.push(author.to_string());
                }
                names.sort();
                names.dedup();
                // group names expand to their members' keys
                let mut recipients: Vec<Recipient> = Vec::new();
                for n in &names {
                    for id in directory.expand(n)? {
                        if !recipients.iter().any(|r| r.id == id.name) {
                            recipients.push(Recipient::new(id.name.clone(), id.enc));
                        }
                    }
                }
                let mut enc = encrypt_element(&field_el, &recipients);
                enc.set_attr("field", name.clone());
                result.push_child(enc);
            }
        }
    }
    Ok(result)
}

/// Build a `<Result>` element with every field in plaintext — used for the
/// intermediate (TFC-sealed) form, whose confidentiality comes from the
/// outer sealed box rather than per-field encryption.
pub fn build_plain_result_element(responses: &[(String, String)]) -> Element {
    let mut result = Element::new("Result");
    for (name, value) in responses {
        result.push_child(Element::new("Field").attr("name", name.clone()).text(value.clone()));
    }
    result
}

/// Extract all plaintext fields from a `<Result>` (inverse of
/// [`build_plain_result_element`]); encrypted entries are skipped.
pub fn plain_fields(result: &Element) -> Vec<(String, String)> {
    result
        .find_children("Field")
        .map(|f| (f.get_attr("name").unwrap_or_default().to_string(), f.text_content()))
        .collect()
}

/// Read one field from a `<Result>` element as `reader_name`.
///
/// Returns `Ok(None)` if the field does not exist in this result.
pub fn read_field_from_result(
    result: &Element,
    activity: &str,
    field: &str,
    reader_name: &str,
    creds: Option<&Credentials>,
) -> WfResult<Option<String>> {
    // plaintext?
    for f in result.find_children("Field") {
        if f.get_attr("name") == Some(field) {
            return Ok(Some(f.text_content()));
        }
    }
    // encrypted?
    for e in result.child_elements() {
        if is_encrypted(e) && e.get_attr("field") == Some(field) {
            let not_readable = || WfError::FieldNotReadable {
                activity: activity.to_string(),
                field: field.to_string(),
                reader: reader_name.to_string(),
            };
            if !recipients_of(e).contains(&reader_name) {
                return Err(not_readable());
            }
            let creds = creds.ok_or_else(not_readable)?;
            let inner = decrypt_element(e, reader_name, &creds.enc)
                .map_err(|err| WfError::Crypto(err.to_string()))?;
            return Ok(Some(inner.text_content()));
        }
    }
    Ok(None)
}

/// List the field names present in a result (plaintext and encrypted).
pub fn field_names(result: &Element) -> Vec<String> {
    let mut out = Vec::new();
    for e in result.child_elements() {
        if e.name == "Field" {
            if let Some(n) = e.get_attr("name") {
                out.push(n.to_string());
            }
        } else if is_encrypted(e) {
            if let Some(n) = e.get_attr("field") {
                out.push(n.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SecurityPolicy;
    use std::collections::HashMap;

    /// Map-backed reader for tests.
    pub struct MapReader(pub HashMap<(String, String), String>);

    impl FieldReader for MapReader {
        fn read_field(&self, activity: &str, field: &str) -> WfResult<Option<String>> {
            Ok(self.0.get(&(activity.to_string(), field.to_string())).cloned())
        }
    }

    fn setup() -> (Directory, Credentials, Credentials, Credentials) {
        let peter = Credentials::from_seed("peter", "p");
        let amy = Credentials::from_seed("amy", "a");
        let tony = Credentials::from_seed("tony", "t");
        let dir = Directory::from_credentials([&peter, &amy, &tony]);
        (dir, peter, amy, tony)
    }

    fn empty_reader() -> MapReader {
        MapReader(HashMap::new())
    }

    #[test]
    fn public_fields_are_plaintext() {
        let (dir, peter, ..) = setup();
        let result = build_result_element(
            "A",
            &[("note".into(), "hello".into())],
            &SecurityPolicy::public(),
            &dir,
            &peter.name,
            &empty_reader(),
        )
        .unwrap();
        assert_eq!(
            read_field_from_result(&result, "A", "note", "anyone", None).unwrap(),
            Some("hello".into())
        );
    }

    #[test]
    fn restricted_field_readable_by_audience_and_author() {
        let (dir, peter, amy, tony) = setup();
        let policy = SecurityPolicy::builder().restrict("A", "x", &["amy"]).build();
        let result = build_result_element(
            "A",
            &[("x".into(), "42".into())],
            &policy,
            &dir,
            &peter.name,
            &empty_reader(),
        )
        .unwrap();
        // amy (audience) reads
        assert_eq!(
            read_field_from_result(&result, "A", "x", "amy", Some(&amy)).unwrap(),
            Some("42".into())
        );
        // peter (author) reads
        assert_eq!(
            read_field_from_result(&result, "A", "x", "peter", Some(&peter)).unwrap(),
            Some("42".into())
        );
        // tony cannot
        assert!(matches!(
            read_field_from_result(&result, "A", "x", "tony", Some(&tony)),
            Err(WfError::FieldNotReadable { .. })
        ));
    }

    #[test]
    fn missing_field_is_none() {
        let (dir, peter, ..) = setup();
        let result = build_result_element(
            "A",
            &[],
            &SecurityPolicy::public(),
            &dir,
            &peter.name,
            &empty_reader(),
        )
        .unwrap();
        assert_eq!(read_field_from_result(&result, "A", "ghost", "x", None).unwrap(), None);
    }

    #[test]
    fn conditional_readers_then_branch() {
        let (dir, peter, amy, tony) = setup();
        let policy = SecurityPolicy::builder()
            .restrict_conditional(
                "A2",
                "Y",
                Condition::field_equals("A1", "X", "true"),
                &["amy"],
                &["tony"],
            )
            .build();
        let mut vals = HashMap::new();
        vals.insert(("A1".into(), "X".into()), "true".into());
        let result = build_result_element(
            "A2",
            &[("Y".into(), "secret".into())],
            &policy,
            &dir,
            &peter.name,
            &MapReader(vals),
        )
        .unwrap();
        assert_eq!(
            read_field_from_result(&result, "A2", "Y", "amy", Some(&amy)).unwrap(),
            Some("secret".into())
        );
        assert!(read_field_from_result(&result, "A2", "Y", "tony", Some(&tony)).is_err());
    }

    #[test]
    fn conditional_readers_else_branch() {
        let (dir, peter, amy, tony) = setup();
        let policy = SecurityPolicy::builder()
            .restrict_conditional(
                "A2",
                "Y",
                Condition::field_equals("A1", "X", "true"),
                &["amy"],
                &["tony"],
            )
            .build();
        let mut vals = HashMap::new();
        vals.insert(("A1".into(), "X".into()), "false".into());
        let result = build_result_element(
            "A2",
            &[("Y".into(), "secret".into())],
            &policy,
            &dir,
            &peter.name,
            &MapReader(vals),
        )
        .unwrap();
        assert!(read_field_from_result(&result, "A2", "Y", "amy", Some(&amy)).is_err());
        assert_eq!(
            read_field_from_result(&result, "A2", "Y", "tony", Some(&tony)).unwrap(),
            Some("secret".into())
        );
    }

    #[test]
    fn conditional_unreadable_condition_propagates() {
        // Tony's AEA cannot read A1.X, so it cannot resolve the audience —
        // the Fig. 4 failure, surfaced as an error in the basic model.
        struct Unreadable;
        impl FieldReader for Unreadable {
            fn read_field(&self, activity: &str, field: &str) -> WfResult<Option<String>> {
                Err(WfError::FieldNotReadable {
                    activity: activity.into(),
                    field: field.into(),
                    reader: "tony".into(),
                })
            }
        }
        let (dir, _, _, tony) = setup();
        let policy = SecurityPolicy::builder()
            .restrict_conditional(
                "A2",
                "Y",
                Condition::field_equals("A1", "X", "true"),
                &["amy"],
                &["mary"],
            )
            .build();
        let err = build_result_element(
            "A2",
            &[("Y".into(), "v".into())],
            &policy,
            &dir,
            &tony.name,
            &Unreadable,
        )
        .unwrap_err();
        assert!(matches!(err, WfError::FieldNotReadable { .. }));
    }

    #[test]
    fn condition_on_unproduced_field_errors() {
        let c = Condition::field_equals("A9", "nope", "1");
        let err = eval_condition(&c, &empty_reader()).unwrap_err();
        assert!(matches!(err, WfError::Flow(_)));
    }

    #[test]
    fn unknown_recipient_errors() {
        let (dir, peter, ..) = setup();
        let policy = SecurityPolicy::builder().restrict("A", "x", &["ghost"]).build();
        let err = build_result_element(
            "A",
            &[("x".into(), "1".into())],
            &policy,
            &dir,
            &peter.name,
            &empty_reader(),
        )
        .unwrap_err();
        assert!(matches!(err, WfError::UnknownIdentity(g) if g == "ghost"));
    }

    #[test]
    fn group_audience_expands_to_members() {
        let peter = Credentials::from_seed("peter", "p");
        let amy = Credentials::from_seed("amy", "a");
        let tony = Credentials::from_seed("tony", "t");
        let outsider = Credentials::from_seed("eve", "e");
        let mut dir = Directory::from_credentials([&peter, &amy, &tony, &outsider]);
        dir.register_group("reviewers", &["amy", "tony"]).unwrap();
        let policy = SecurityPolicy::builder().restrict("A", "x", &["reviewers"]).build();
        let result = build_result_element(
            "A",
            &[("x".into(), "42".into())],
            &policy,
            &dir,
            "peter",
            &empty_reader(),
        )
        .unwrap();
        for (who, creds) in [("amy", &amy), ("tony", &tony)] {
            assert_eq!(
                read_field_from_result(&result, "A", "x", who, Some(creds)).unwrap(),
                Some("42".into()),
                "{who} is a group member"
            );
        }
        assert!(read_field_from_result(&result, "A", "x", "eve", Some(&outsider)).is_err());
    }

    #[test]
    fn plain_result_roundtrip() {
        let fields = vec![("a".to_string(), "1".to_string()), ("b".to_string(), "2".to_string())];
        let el = build_plain_result_element(&fields);
        assert_eq!(plain_fields(&el), fields);
        assert_eq!(field_names(&el), vec!["a", "b"]);
    }

    #[test]
    fn field_names_include_encrypted() {
        let (dir, peter, ..) = setup();
        let policy = SecurityPolicy::builder().restrict("A", "x", &["amy"]).build();
        let result = build_result_element(
            "A",
            &[("x".into(), "1".into()), ("pub".into(), "2".into())],
            &policy,
            &dir,
            &peter.name,
            &empty_reader(),
        )
        .unwrap();
        let mut names = field_names(&result);
        names.sort();
        assert_eq!(names, vec!["pub", "x"]);
    }
}
