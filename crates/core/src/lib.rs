//! # dra4wfms-core — the Document Routing Architecture for WfMS
//!
//! A Rust implementation of the paper *"A Framework for Nonrepudiatable and
//! Scalable Cross-Enterprise Workflow Management Systems in the Cloud"*
//! (Hwang, Hsiao, Kao, Lin — IEEE IPDPSW 2012): an **engine-less,
//! document-routing** workflow management system in which the process
//! instance travels inside a self-protecting XML document.
//!
//! ## Security framework
//!
//! * **Authentication** — every actor holds Ed25519/X25519 keypairs
//!   registered in a [`identity::Directory`]; every execution is checked
//!   against the participant the definition assigns.
//! * **Confidentiality** — element-wise encryption ([`fields`]): each form
//!   field is encrypted to exactly its policy-defined audience.
//! * **Integrity** — any alteration of the routed document breaks a
//!   signature during verification ([`verify::Verifier`]).
//! * **Nonrepudiation** — the cascade of signatures: each participant signs
//!   its result *and the signatures of all predecessor activities*
//!   ([`aea`]); Algorithm 1 ([`scope`]) derives who cannot deny what.
//!
//! ## Operational models
//!
//! * **Basic** ([`aea::Aea::complete`]) — the participant's AEA encrypts,
//!   signs and routes on its own.
//! * **Advanced** ([`aea::Aea::complete_via_tfc`] + [`tfc::TfcServer`]) —
//!   the document passes through a Timestamp & Flow Control server that
//!   re-encrypts per policy, embeds trusted timestamps and resolves routing
//!   the participant must not see (the paper's Fig. 4 conflict-of-interest
//!   scenario).
//!
//! ## Quick start
//!
//! ```
//! use dra4wfms_core::prelude::*;
//!
//! // actors
//! let designer = Credentials::from_seed("designer", "seed-d");
//! let alice = Credentials::from_seed("alice", "seed-a");
//! let bob = Credentials::from_seed("bob", "seed-b");
//! let directory = Directory::from_credentials([&designer, &alice, &bob]);
//!
//! // a two-step workflow
//! let def = WorkflowDefinition::builder("expense", "designer")
//!     .simple_activity("submit", "alice", &["amount"])
//!     .simple_activity("approve", "bob", &["decision"])
//!     .flow("submit", "approve")
//!     .flow_end("approve")
//!     .build()
//!     .unwrap();
//! let policy = SecurityPolicy::builder()
//!     .restrict("submit", "amount", &["bob"])
//!     .build();
//!
//! // the secured initial document
//! let doc = DraDocument::new_initial(&def, &policy, &designer).unwrap();
//!
//! // alice executes "submit"
//! let aea = Aea::new(alice, directory.clone());
//! let received = aea.receive(&doc.to_xml_string(), "submit").unwrap();
//! let done = aea.complete(&received, &[("amount".into(), "120".into())]).unwrap();
//! assert_eq!(done.route.targets, vec!["approve".to_string()]);
//!
//! // bob executes "approve" — seeing amount, verifying the whole cascade
//! let aea = Aea::new(bob, directory.clone());
//! let received = aea.receive(&done.document.to_xml_string(), "approve").unwrap();
//! let done = aea.complete(&received, &[("decision".into(), "ok".into())]).unwrap();
//! assert!(done.route.ends);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aea;
pub mod amendment;
pub mod document;
pub mod dsl;
pub mod error;
pub mod faultpoint;
pub mod fields;
pub mod flow;
pub mod identity;
pub mod ingest;
pub mod model;
pub mod monitor;
pub mod policy;
pub mod reconcile;
pub mod scope;
pub mod sealed;
pub mod soundness;
pub mod tfc;
pub mod verify;

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::aea::{Aea, CompletedActivity, IntermediateActivity, ReceivedActivity};
    pub use crate::amendment::{amend_document, effective_definition, DefinitionDelta};
    pub use crate::document::{CerKey, DraDocument, PredRef};
    pub use crate::dsl::{parse_workflow, to_dsl};
    pub use crate::error::{WfError, WfResult};
    pub use crate::faultpoint::CrashHook;
    pub use crate::fields::FieldReader;
    pub use crate::flow::{
        evaluate_route, evaluate_route_after, fired_cancellations, join_ready, merge_documents,
        resolve_cardinality, DocFieldReader, Route,
    };
    pub use crate::identity::{Credentials, Directory, Identity};
    pub use crate::ingest::Inbound;
    pub use crate::model::{
        Activity, CancelRegion, Cardinality, Condition, FieldRef, JoinKind, MultiInstance, Target,
        Transition, WorkflowDefinition,
    };
    pub use crate::monitor::{ProcessStatus, SloReport};
    pub use crate::policy::{FieldRule, Readers, SecurityPolicy};
    pub use crate::reconcile::{reconcile, ReconcileError, ReconcileReport};
    pub use crate::scope::{all_scopes, nonrepudiation_scope};
    pub use crate::sealed::{prefix_digest, SealedDocument, TrustMark};
    pub use crate::soundness::{check_soundness, require_sound, SoundnessError, SoundnessReport};
    pub use crate::tfc::{TfcProcessed, TfcServer};
    pub use crate::verify::{trust_mark_for, VerificationReport, Verifier, VerifyOutcome};
}

pub use prelude::*;
