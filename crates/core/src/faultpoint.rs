//! Named crash-injection points inside the AEA and TFC pipelines.
//!
//! Crash faults are scheduled by the cloud layer (it owns virtual time and
//! the seeded schedule), but they must *fire* deep inside core components —
//! between a verification and a signature, between a timestamp draw and the
//! re-encrypt. Core cannot depend on the cloud crate, so the seam is a plain
//! callback: components built with a [`CrashHook`] consult it at each named
//! site and propagate the [`crate::error::WfError::Crash`] it returns. A
//! component without a hook pays nothing.
//!
//! Site names are stable strings (not an enum) so the cloud layer can extend
//! the set — e.g. with portal-side sites core never sees — without a lockstep
//! core change.

use crate::error::WfResult;
use std::sync::Arc;

/// A crash-injection callback: given the site name, return
/// `Err(WfError::Crash(..))` to kill the component there, `Ok(())` to let
/// execution proceed.
pub type CrashHook = Arc<dyn Fn(&str) -> WfResult<()> + Send + Sync>;

/// The named injection sites core components consult.
pub mod site {
    /// After the AEA verified the incoming document, before any work on the
    /// response: the agent dies holding nothing the pool does not already
    /// have.
    pub const AEA_AFTER_VERIFY: &str = "aea:after-verify";
    /// After the response fields were produced, immediately before the
    /// cascade signature: the half-built document dies with the agent.
    pub const AEA_BEFORE_SIGN: &str = "aea:before-sign";
    /// After the cascade signature, before the send: the completed document
    /// existed only in the dead agent's memory — unless its send raced out.
    pub const AEA_AFTER_SIGN: &str = "aea:after-sign-before-send";
    /// After the TFC drew (and redo-logged) the timestamp, before the
    /// re-encrypt/attest/forward: the classic double-timestamp hazard.
    pub const TFC_AFTER_TIMESTAMP: &str = "tfc:after-timestamp";
    /// Portal-side: between writing the seen-row and the document row — the
    /// atomicity hazard the write-ahead journal closes. Defined here for a
    /// single authoritative list; core itself never visits it.
    pub const PORTAL_BETWEEN_SEEN_AND_STORE: &str = "portal:between-seen-and-store";
    /// Federation-side: after a replica cloud journalled an admission's ops
    /// but before it committed/applied them — the torn-replication hazard
    /// each replica's own write-ahead journal closes. Defined here for the
    /// same single-authoritative-list reason; core never visits it.
    pub const PORTAL_REPLICA_BEFORE_COMMIT: &str = "portal:replica-before-commit";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WfError;

    #[test]
    fn hook_decides_per_site() {
        let hook: CrashHook = Arc::new(|s| {
            if s == site::AEA_BEFORE_SIGN {
                Err(WfError::Crash(s.to_string()))
            } else {
                Ok(())
            }
        });
        assert!(hook(site::AEA_AFTER_VERIFY).is_ok());
        assert!(matches!(hook(site::AEA_BEFORE_SIGN), Err(WfError::Crash(_))));
    }
}
