//! Unified error type for the DRA4WfMS core.

use crate::model::ActivityId;

/// Anything that can go wrong while building, routing, executing or
/// verifying a DRA4WfMS document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// XML / document structure could not be parsed.
    Parse(String),
    /// A digital signature failed to verify, or a required signature is
    /// missing — integrity or nonrepudiation violation.
    Verify(String),
    /// The security policy is inconsistent or cannot be applied.
    Policy(String),
    /// Control-flow evaluation failed (bad transition, unsatisfied join…).
    Flow(String),
    /// A cryptographic operation failed (decryption, key wrap…).
    Crypto(String),
    /// The acting participant is not the assigned executor of the activity.
    NotParticipant {
        /// Who the workflow definition assigns.
        expected: String,
        /// Who attempted the execution.
        actual: String,
    },
    /// The referenced activity does not exist in the workflow definition.
    UnknownActivity(ActivityId),
    /// The referenced identity is not present in the directory.
    UnknownIdentity(String),
    /// A field needed (for display or condition evaluation) is encrypted to
    /// other recipients. This is exactly the Fig. 4 flow-concealment problem
    /// of the paper; the advanced operational model resolves it via the TFC.
    FieldNotReadable {
        /// Producing activity.
        activity: ActivityId,
        /// Field name.
        field: String,
        /// Who tried to read it.
        reader: String,
    },
    /// Documents being merged at an AND-join disagree (different process id
    /// or different application definition).
    MergeMismatch(String),
    /// Structurally invalid DRA4WfMS document.
    Malformed(String),
    /// Invalid runtime configuration (zero-bandwidth network, fault rates
    /// outside `[0, 1)`, an `InstanceRun` builder missing a required
    /// component…). Always a caller bug, never a document fault.
    Config(String),
    /// A document hand-off could not be completed within the delivery
    /// policy's retry budget (the simulated channel dropped or corrupted
    /// every attempt).
    Delivery(String),
    /// A simulated crash fault killed the component mid-operation: every
    /// in-flight state it held is gone, and only what had already reached
    /// stable storage (the document pool, a write-ahead journal, the TFC
    /// redo log) survives. Recovery machinery catches this variant; it must
    /// never be conflated with a document or policy fault.
    Crash(String),
    /// The workflow definition failed design-time soundness analysis
    /// (deadlock, dead activity, unbounded join, orphaning cancellation…).
    /// Raised at admission, before any activity executes; the message is
    /// the precise diagnostic from `core::soundness`.
    Unsound(String),
}

impl std::fmt::Display for WfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfError::Parse(m) => write!(f, "parse error: {m}"),
            WfError::Verify(m) => write!(f, "signature verification failed: {m}"),
            WfError::Policy(m) => write!(f, "security policy error: {m}"),
            WfError::Flow(m) => write!(f, "control flow error: {m}"),
            WfError::Crypto(m) => write!(f, "cryptographic failure: {m}"),
            WfError::NotParticipant { expected, actual } => {
                write!(f, "participant mismatch: activity assigned to '{expected}', attempted by '{actual}'")
            }
            WfError::UnknownActivity(a) => write!(f, "unknown activity '{a}'"),
            WfError::UnknownIdentity(p) => write!(f, "unknown identity '{p}'"),
            WfError::FieldNotReadable { activity, field, reader } => {
                write!(f, "'{reader}' cannot read field '{field}' of activity '{activity}' (element-wise encrypted to other recipients)")
            }
            WfError::MergeMismatch(m) => write!(f, "document merge mismatch: {m}"),
            WfError::Malformed(m) => write!(f, "malformed document: {m}"),
            WfError::Config(m) => write!(f, "configuration error: {m}"),
            WfError::Delivery(m) => write!(f, "delivery failed: {m}"),
            WfError::Crash(m) => write!(f, "simulated crash: {m}"),
            WfError::Unsound(m) => write!(f, "unsound workflow definition: {m}"),
        }
    }
}

impl std::error::Error for WfError {}

/// Convenient alias.
pub type WfResult<T> = Result<T, WfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = WfError::FieldNotReadable {
            activity: "A3".into(),
            field: "X".into(),
            reader: "tony".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("tony") && msg.contains("A3") && msg.contains('X'));

        let e = WfError::NotParticipant { expected: "amy".into(), actual: "mallory".into() };
        assert!(e.to_string().contains("amy"));
    }
}
