//! Dynamic flow control and dynamic security policy (§1):
//!
//! > "It can support dynamic flow control and a dynamic security policy in
//! > its run-time environment."
//!
//! A running process can be amended — activities appended, transitions
//! added or retired, policy rules added — without any engine to coordinate
//! the change. An amendment travels as a special CER executed by the
//! workflow designer: its "result" is a [`DefinitionDelta`], it carries a
//! cascade signature like any other CER (so it is bound to the process id,
//! covered by every later signature, and cannot be removed or replayed),
//! and every AEA/TFC computes the **effective definition** by folding the
//! amendment CERs into the base definition before routing.

use crate::document::{CerKey, DraDocument, PredRef};
use crate::error::{WfError, WfResult};
use crate::identity::Credentials;
use crate::model::{
    condition_from_xml, condition_to_xml, Activity, FieldRef, JoinKind, Target, Transition,
    WorkflowDefinition,
};
use crate::policy::{FieldRule, SecurityPolicy};
use dra_xml::sig::sign_detached;
use dra_xml::Element;

/// Pseudo-activity id prefix marking amendment CERs.
pub const AMEND_PREFIX: &str = "__amend";

/// A change to a running process: new activities, new or retired
/// transitions, new policy rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DefinitionDelta {
    /// Activities appended to the definition.
    pub add_activities: Vec<Activity>,
    /// Transitions appended to the definition.
    pub add_transitions: Vec<Transition>,
    /// Transitions removed, identified by (from, to) — used to reroute.
    pub retire_transitions: Vec<(String, Target)>,
    /// Field rules appended to the security policy (first match wins, so a
    /// new rule for an existing field overrides the old one only if
    /// prepended — see [`DefinitionDelta::apply`]).
    pub add_policy_rules: Vec<FieldRule>,
}

impl DefinitionDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.add_activities.is_empty()
            && self.add_transitions.is_empty()
            && self.retire_transitions.is_empty()
            && self.add_policy_rules.is_empty()
    }

    /// Apply to a definition + policy pair, validating the result.
    pub fn apply(
        &self,
        def: &WorkflowDefinition,
        policy: &SecurityPolicy,
    ) -> WfResult<(WorkflowDefinition, SecurityPolicy)> {
        let mut def = def.clone();
        def.activities.extend(self.add_activities.iter().cloned());
        def.transitions.retain(|t| {
            !self.retire_transitions.iter().any(|(from, to)| t.from == *from && t.to == *to)
        });
        def.transitions.extend(self.add_transitions.iter().cloned());
        def.validate()?;
        let mut policy = policy.clone();
        // new rules take precedence over old ones for the same field
        let mut rules = self.add_policy_rules.clone();
        rules.extend(policy.rules);
        policy.rules = rules;
        Ok((def, policy))
    }

    // -- XML -----------------------------------------------------------------

    /// Serialize as the `<Delta>` payload of an amendment CER.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("Delta");
        for a in &self.add_activities {
            let mut el = Element::new("AddActivity")
                .attr("id", a.id.clone())
                .attr("participant", a.participant.clone());
            if a.join == JoinKind::All {
                el.set_attr("join", "all");
            }
            for r in &a.requests {
                el.push_child(
                    Element::new("Request")
                        .attr("activity", r.activity.clone())
                        .attr("field", r.field.clone()),
                );
            }
            for f in &a.responses {
                el.push_child(Element::new("Response").attr("field", f.clone()));
            }
            root.push_child(el);
        }
        for t in &self.add_transitions {
            let mut el = Element::new("AddTransition").attr("from", t.from.clone());
            match &t.to {
                Target::Activity(a) => el.set_attr("to", a.clone()),
                Target::End => el.set_attr("to", "#end"),
            }
            if let Some(c) = &t.condition {
                el.push_child(condition_to_xml(c));
            }
            root.push_child(el);
        }
        for (from, to) in &self.retire_transitions {
            let mut el = Element::new("RetireTransition").attr("from", from.clone());
            match to {
                Target::Activity(a) => el.set_attr("to", a.clone()),
                Target::End => el.set_attr("to", "#end"),
            }
            root.push_child(el);
        }
        for r in &self.add_policy_rules {
            let mut el = Element::new("AddRule")
                .attr("activity", r.activity.clone())
                .attr("field", r.field.clone());
            el.push_child(crate::policy::readers_to_xml_pub("Readers", &r.readers));
            root.push_child(el);
        }
        root
    }

    /// Parse back from XML.
    pub fn from_xml(el: &Element) -> WfResult<DefinitionDelta> {
        if el.name != "Delta" {
            return Err(WfError::Malformed(format!("expected <Delta>, found <{}>", el.name)));
        }
        let mut delta = DefinitionDelta::default();
        for a in el.find_children("AddActivity") {
            let mut act = Activity {
                id: a.get_attr("id").unwrap_or_default().to_string(),
                participant: a.get_attr("participant").unwrap_or_default().to_string(),
                join: if a.get_attr("join") == Some("all") { JoinKind::All } else { JoinKind::Any },
                requests: Vec::new(),
                responses: Vec::new(),
            };
            for r in a.find_children("Request") {
                act.requests.push(FieldRef::new(
                    r.get_attr("activity").unwrap_or_default(),
                    r.get_attr("field").unwrap_or_default(),
                ));
            }
            for f in a.find_children("Response") {
                act.responses.push(f.get_attr("field").unwrap_or_default().to_string());
            }
            delta.add_activities.push(act);
        }
        let parse_target = |s: &str| {
            if s == "#end" {
                Target::End
            } else {
                Target::Activity(s.to_string())
            }
        };
        for t in el.find_children("AddTransition") {
            delta.add_transitions.push(Transition {
                from: t.get_attr("from").unwrap_or_default().to_string(),
                to: parse_target(t.get_attr("to").unwrap_or_default()),
                condition: match t.find_child("Condition") {
                    Some(c) => Some(condition_from_xml(c)?),
                    None => None,
                },
            });
        }
        for t in el.find_children("RetireTransition") {
            delta.retire_transitions.push((
                t.get_attr("from").unwrap_or_default().to_string(),
                parse_target(t.get_attr("to").unwrap_or_default()),
            ));
        }
        for r in el.find_children("AddRule") {
            let readers_el = r
                .find_child("Readers")
                .ok_or_else(|| WfError::Malformed("AddRule missing Readers".into()))?;
            delta.add_policy_rules.push(FieldRule {
                activity: r.get_attr("activity").unwrap_or_default().to_string(),
                field: r.get_attr("field").unwrap_or_default().to_string(),
                readers: crate::policy::readers_from_xml_pub(readers_el)?,
            });
        }
        Ok(delta)
    }
}

/// True when a CER key denotes an amendment.
pub fn is_amendment_key(key: &CerKey) -> bool {
    key.activity.starts_with(AMEND_PREFIX)
}

/// Fold all amendment CERs of `doc` into its base definition and policy,
/// returning the effective pair. Amendment payloads are **not** verified
/// here — run a [`crate::verify::Verifier`] first.
pub fn effective_definition(doc: &DraDocument) -> WfResult<(WorkflowDefinition, SecurityPolicy)> {
    let mut def = doc.workflow_definition()?;
    let mut policy = doc.security_policy()?;
    for cer in doc.cers()? {
        if !is_amendment_key(&cer.key) {
            continue;
        }
        let result = cer
            .result()
            .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Result", cer.key)))?;
        let delta_el = result
            .find_child("Delta")
            .ok_or_else(|| WfError::Malformed(format!("amendment {} lacks Delta", cer.key)))?;
        let delta = DefinitionDelta::from_xml(delta_el)?;
        let (d, p) = delta.apply(&def, &policy)?;
        def = d;
        policy = p;
    }
    Ok((def, policy))
}

/// Append a signed amendment CER to `doc`. Only the workflow designer (the
/// identity named in the base definition) may amend; the amendment's
/// cascade signature covers the latest CER (or Def) so it is ordered and
/// irremovable.
pub fn amend_document(
    doc: &DraDocument,
    designer: &Credentials,
    delta: &DefinitionDelta,
) -> WfResult<DraDocument> {
    let base = doc.workflow_definition()?;
    if designer.name != base.designer {
        return Err(WfError::NotParticipant {
            expected: base.designer.clone(),
            actual: designer.name.clone(),
        });
    }
    // the amended definition must be valid
    let (cur_def, cur_pol) = effective_definition(doc)?;
    delta.apply(&cur_def, &cur_pol)?;

    // preds: the latest CER in document order, or Def for a fresh document
    let cers = doc.cers()?;
    let preds = match cers.last() {
        Some(c) => vec![PredRef::Cer(c.key.clone())],
        None => vec![PredRef::Def],
    };
    let iter = cers.iter().filter(|c| is_amendment_key(&c.key)).count() as u32;

    let result = Element::new("Result").child(delta.to_xml());
    let mut document = doc.clone();
    let key = CerKey::new(AMEND_PREFIX.to_string(), iter);
    let cascade = document.cascade_bytes(&result, &preds)?;
    let sig = sign_detached(&designer.sign, &cascade, &format!("{key}"));
    let cer = Element::new("CER")
        .attr("activity", AMEND_PREFIX)
        .attr("iter", iter.to_string())
        .attr("participant", designer.name.clone())
        .attr("preds", crate::document::preds_to_attr(&preds))
        .child(result)
        .child(sig);
    document.push_cer(cer)?;
    Ok(document)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aea::Aea;
    use crate::identity::Directory;
    use crate::policy::Readers;
    use crate::verify::Verifier;

    fn setup() -> (WorkflowDefinition, Credentials, Vec<Credentials>, Directory) {
        let designer = Credentials::from_seed("designer", "amd-d");
        let alice = Credentials::from_seed("alice", "amd-a");
        let bob = Credentials::from_seed("bob", "amd-b");
        let carol = Credentials::from_seed("carol", "amd-c");
        let def = WorkflowDefinition::builder("amendable", "designer")
            .simple_activity("s1", "alice", &["x"])
            .simple_activity("s2", "bob", &["y"])
            .flow("s1", "s2")
            .flow_end("s2")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &alice, &bob, &carol]);
        (def, designer, vec![alice, bob, carol], dir)
    }

    fn audit_delta() -> DefinitionDelta {
        DefinitionDelta {
            add_activities: vec![Activity {
                id: "audit".into(),
                participant: "carol".into(),
                join: JoinKind::Any,
                requests: vec![],
                responses: vec!["stamp".into()],
            }],
            add_transitions: vec![
                Transition {
                    from: "s2".into(),
                    to: Target::Activity("audit".into()),
                    condition: None,
                },
                Transition { from: "audit".into(), to: Target::End, condition: None },
            ],
            retire_transitions: vec![("s2".into(), Target::End)],
            add_policy_rules: vec![FieldRule {
                activity: "audit".into(),
                field: "stamp".into(),
                readers: Readers::Only(vec!["alice".into()]),
            }],
        }
    }

    #[test]
    fn delta_xml_roundtrip() {
        let d = audit_delta();
        let parsed = DefinitionDelta::from_xml(&d.to_xml()).unwrap();
        assert_eq!(parsed, d);
        // and over the wire
        let wire = dra_xml::writer::to_string(&d.to_xml());
        let parsed = DefinitionDelta::from_xml(&dra_xml::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, d);
        assert!(!d.is_empty());
        assert!(DefinitionDelta::default().is_empty());
    }

    #[test]
    fn amendment_reroutes_a_running_process() {
        let (def, designer, people, dir) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-1")
                .unwrap();

        // alice executes s1
        let aea_alice = Aea::new(people[0].clone(), dir.clone());
        let recv = aea_alice.receive(doc.to_xml_string(), "s1").unwrap();
        let done = aea_alice.complete(&recv, &[("x".into(), "1".into())]).unwrap();

        // designer amends mid-flight: append an audit step after s2
        let amended = amend_document(&done.document, &designer, &audit_delta()).unwrap();
        Verifier::new(&dir).run(&amended).expect("amended document verifies");

        // bob executes s2 — the route now goes to audit, not End
        let aea_bob = Aea::new(people[1].clone(), dir.clone());
        let recv = aea_bob.receive(amended.to_xml_string(), "s2").unwrap();
        let done = aea_bob.complete(&recv, &[("y".into(), "2".into())]).unwrap();
        assert_eq!(done.route.targets, vec!["audit"]);
        assert!(!done.route.ends);

        // carol executes the dynamically added activity
        let aea_carol = Aea::new(people[2].clone(), dir.clone());
        let recv = aea_carol.receive(done.document.to_xml_string(), "audit").unwrap();
        let done = aea_carol.complete(&recv, &[("stamp".into(), "sealed".into())]).unwrap();
        assert!(done.route.ends);

        // the final document verifies, amendment CER included
        let report = Verifier::new(&dir).run(&done.document).unwrap().report;
        assert_eq!(report.cers.len(), 4, "s1 + __amend + s2 + audit");
        // and the dynamic policy applied: the stamp is encrypted for alice
        let cer = done.document.find_cer(&CerKey::new("audit", 0)).unwrap().unwrap();
        let enc = cer
            .result()
            .unwrap()
            .child_elements()
            .find(|e| e.get_attr("field") == Some("stamp"))
            .expect("stamp encrypted");
        assert!(dra_xml::enc::recipients_of(enc).contains(&"alice"));
    }

    #[test]
    fn non_designer_cannot_amend() {
        let (def, designer, people, _) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-2")
                .unwrap();
        let mallory = &people[0]; // alice is a participant, not the designer
        assert!(matches!(
            amend_document(&doc, mallory, &audit_delta()),
            Err(WfError::NotParticipant { .. })
        ));
    }

    #[test]
    fn forged_amendment_detected() {
        let (def, designer, _, dir) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-3")
                .unwrap();
        let amended = amend_document(&doc, &designer, &audit_delta()).unwrap();
        // attacker edits the delta in the stored document (redirect to
        // themselves)
        let forged =
            amended.to_xml_string().replace("participant=\"carol\"", "participant=\"alice\"");
        assert_ne!(forged, amended.to_xml_string());
        let parsed = DraDocument::parse(&forged).unwrap();
        assert!(Verifier::new(&dir).run(&parsed).is_err(), "amendment tamper detected");
    }

    #[test]
    fn amendment_removal_detected_when_signed_over() {
        let (def, designer, people, dir) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-4")
                .unwrap();
        let amended = amend_document(&doc, &designer, &audit_delta()).unwrap();
        // alice executes s1 AFTER the amendment: her cascade covers it
        let aea_alice = Aea::new(people[0].clone(), dir.clone());
        let recv = aea_alice.receive(amended.to_xml_string(), "s1").unwrap();
        let done = aea_alice.complete(&recv, &[("x".into(), "1".into())]).unwrap();
        // attacker strips the amendment CER
        let mut stripped = done.document.clone().into_document();
        let results = stripped.root.find_child_mut("ActivityResults").unwrap();
        let before = results.children.len();
        results.children.retain(|n| match n {
            dra_xml::Node::Element(e) => e.get_attr("activity") != Some(AMEND_PREFIX),
            _ => true,
        });
        assert_eq!(results.children.len(), before - 1);
        assert!(Verifier::new(&dir).run(&stripped).is_err(), "removal breaks the cascade");
    }

    #[test]
    fn invalid_delta_rejected() {
        let (def, designer, _, _) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-5")
                .unwrap();
        // transition to a ghost activity
        let bad = DefinitionDelta {
            add_transitions: vec![Transition {
                from: "s1".into(),
                to: Target::Activity("GHOST".into()),
                condition: None,
            }],
            ..DefinitionDelta::default()
        };
        assert!(amend_document(&doc, &designer, &bad).is_err());
    }

    #[test]
    fn multiple_amendments_stack() {
        let (def, designer, _, dir) = setup();
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "amd-6")
                .unwrap();
        let once = amend_document(&doc, &designer, &audit_delta()).unwrap();
        // second amendment: add a final archive step after audit
        let second = DefinitionDelta {
            add_activities: vec![Activity {
                id: "archive".into(),
                participant: "alice".into(),
                join: JoinKind::Any,
                requests: vec![],
                responses: vec!["ref".into()],
            }],
            add_transitions: vec![
                Transition {
                    from: "audit".into(),
                    to: Target::Activity("archive".into()),
                    condition: None,
                },
                Transition { from: "archive".into(), to: Target::End, condition: None },
            ],
            retire_transitions: vec![("audit".into(), Target::End)],
            add_policy_rules: vec![],
        };
        let twice = amend_document(&once, &designer, &second).unwrap();
        Verifier::new(&dir).run(&twice).unwrap();
        let (eff, _) = effective_definition(&twice).unwrap();
        assert!(eff.activity("audit").is_ok());
        assert!(eff.activity("archive").is_ok());
        assert_eq!(twice.latest_iter(AMEND_PREFIX).unwrap(), Some(1), "amendment iters count up");
    }
}
