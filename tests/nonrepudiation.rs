//! Integration: the nonrepudiation cascade (§2.3.2, Algorithm 1) over real
//! executed documents — not structural mocks.

use dra4wfms::prelude::*;
use std::collections::BTreeSet;

fn cast(n: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "nr-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("nr-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

/// A linear chain of n activities, executed fully; returns the document.
fn run_chain(n: usize) -> (DraDocument, Directory) {
    let (creds, dir) = cast(n);
    let mut b = WorkflowDefinition::builder("chain", "designer");
    for i in 0..n {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["v"]);
    }
    for i in 0..n - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    let def = b.flow_end(format!("S{}", n - 1)).build().unwrap();

    let mut doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "nr")
            .unwrap();
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let recv = aea.receive(doc.to_xml_string(), &format!("S{i}")).unwrap();
        doc = aea
            .complete(&recv, &[("v".into(), format!("value-{i}"))])
            .unwrap()
            .document
            .into_document();
    }
    (doc, dir)
}

#[test]
fn chain_scopes_are_nested_prefixes() {
    let (doc, dir) = run_chain(5);
    Verifier::new(&dir).run(&doc).unwrap();
    let mut previous: Option<BTreeSet<PredRef>> = None;
    for i in 0..5 {
        let scope =
            nonrepudiation_scope(&doc, &PredRef::Cer(CerKey::new(format!("S{i}"), 0))).unwrap();
        assert_eq!(scope.len(), i + 2, "Def + S0..Si");
        if let Some(prev) = &previous {
            assert!(prev.is_subset(&scope), "scopes grow monotonically along the chain");
        }
        previous = Some(scope);
    }
}

#[test]
fn last_participant_cannot_repudiate_anything() {
    let (doc, _) = run_chain(4);
    let scope = nonrepudiation_scope(&doc, &PredRef::Cer(CerKey::new("S3", 0))).unwrap();
    // "each participant cannot repudiate the execution of all his ancestors"
    for i in 0..4 {
        assert!(scope.contains(&PredRef::Cer(CerKey::new(format!("S{i}"), 0))));
    }
    assert!(scope.contains(&PredRef::Def));
}

#[test]
fn repudiation_attempt_is_defeated_by_the_cascade() {
    // p1 claims "the value I was shown from S0 was different / my result was
    // altered". The dispute is settled by re-verifying: p1's own signature
    // covers S0's signature and p1's stored result — any alteration after
    // the fact breaks verification, so the stored state is provably what p1
    // signed.
    let (doc, dir) = run_chain(3);
    let report = Verifier::new(&dir).run(&doc).unwrap().report;
    assert_eq!(report.signatures_verified, 4);

    // if p1's claim were true, the document would have had to change after
    // signing — simulate the alleged alteration and observe detection:
    let altered = doc.to_xml_string().replace("value-1", "forged-1");
    assert_ne!(altered, doc.to_xml_string());
    let parsed = DraDocument::parse(&altered).unwrap();
    assert!(
        Verifier::new(&dir).run(&parsed).is_err(),
        "the alleged alteration is distinguishable from the genuine document"
    );
}

#[test]
fn parallel_branches_do_not_bind_each_other() {
    // A -> (B1 || B2) -> C: B1 cannot be held to B2's result, but C is
    // bound to both.
    let creds: Vec<Credentials> = ["designer", "pa", "pb1", "pb2", "pc"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("nrb-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let def = WorkflowDefinition::builder("diamond", "designer")
        .simple_activity("A", "pa", &["x"])
        .simple_activity("B1", "pb1", &["y"])
        .simple_activity("B2", "pb2", &["z"])
        .activity(Activity {
            id: "C".into(),
            participant: "pc".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["w".into()],
        })
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_end("C")
        .build()
        .unwrap();
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "nrb")
            .unwrap();
    let aea = |i: usize| Aea::new(creds[i].clone(), dir.clone());
    let recv = aea(1).receive(initial.to_xml_string(), "A").unwrap();
    let a = aea(1).complete(&recv, &[("x".into(), "1".into())]).unwrap();
    let recv = aea(2).receive(a.document.to_xml_string(), "B1").unwrap();
    let b1 = aea(2).complete(&recv, &[("y".into(), "2".into())]).unwrap();
    let recv = aea(3).receive(a.document.to_xml_string(), "B2").unwrap();
    let b2 = aea(3).complete(&recv, &[("z".into(), "3".into())]).unwrap();
    let recv = aea(4)
        .receive_merged(&[&b1.document.to_xml_string(), &b2.document.to_xml_string()], "C")
        .unwrap();
    let c = aea(4).complete(&recv, &[("w".into(), "4".into())]).unwrap();
    Verifier::new(&dir).run(&c.document).unwrap();

    let b1_scope = nonrepudiation_scope(&c.document, &PredRef::Cer(CerKey::new("B1", 0))).unwrap();
    assert!(!b1_scope.contains(&PredRef::Cer(CerKey::new("B2", 0))));
    let c_scope = nonrepudiation_scope(&c.document, &PredRef::Cer(CerKey::new("C", 0))).unwrap();
    assert!(c_scope.contains(&PredRef::Cer(CerKey::new("B1", 0))));
    assert!(c_scope.contains(&PredRef::Cer(CerKey::new("B2", 0))));
    assert_eq!(c_scope.len(), 5, "Def + A + B1 + B2 + C");
}

#[test]
fn scope_grows_through_loop_iterations() {
    // re-run the chain builder's loop workflow via aea manually with a loop
    let creds: Vec<Credentials> = ["designer", "pa", "pb"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("nrl-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let def = WorkflowDefinition::builder("loop", "designer")
        .simple_activity("A", "pa", &["v"])
        .simple_activity("B", "pb", &["ok"])
        .flow("A", "B")
        .flow_if("B", "A", Condition::field_equals("B", "ok", "no"))
        .flow_end_if("B", Condition::field_not_equals("B", "ok", "no"))
        .build()
        .unwrap();
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "nrl")
            .unwrap();
    let pa = Aea::new(creds[1].clone(), dir.clone());
    let pb = Aea::new(creds[2].clone(), dir.clone());
    for round in 0..3 {
        let recv = pa.receive(doc.to_xml_string(), "A").unwrap();
        assert_eq!(recv.iter, round);
        doc = pa
            .complete(&recv, &[("v".into(), format!("r{round}"))])
            .unwrap()
            .document
            .into_document();
        let recv = pb.receive(doc.to_xml_string(), "B").unwrap();
        let ok = if round < 2 { "no" } else { "yes" };
        doc = pb.complete(&recv, &[("ok".into(), ok.into())]).unwrap().document.into_document();
    }
    Verifier::new(&dir).run(&doc).unwrap();
    // B#2's scope covers every iteration of both activities
    let scope = nonrepudiation_scope(&doc, &PredRef::Cer(CerKey::new("B", 2))).unwrap();
    assert_eq!(scope.len(), 7, "Def + 3×A + 3×B");
    // but A#0's scope is just itself + Def
    let scope0 = nonrepudiation_scope(&doc, &PredRef::Cer(CerKey::new("A", 0))).unwrap();
    assert_eq!(scope0.len(), 2);
}
