//! Integration: the document-vs-trace differential oracle (DESIGN §10).
//!
//! The signed document is the only *authoritative* record of a run; the
//! span trace is an untrusted witness. `reconcile` reconstructs the
//! timeline the document proves — executed activities in cascade order,
//! participants from the CERs, TFC timestamps — and checks the observed
//! trace against it. An honest trace of any Fig. 9 run (basic or advanced
//! model, lossy channel, injected crashes) must reconcile; a trace with a
//! reordered, dropped or forged hop must fail with a diagnostic naming the
//! exact divergence.

use dra4wfms::cloud::{
    tracer_for, CloudSystem, CrashPlan, CrashPoint, Delivery, DeliveryPolicy, FaultProfile,
    InstanceRun, NetworkSim,
};
use dra4wfms::obs::{stage, TraceEvent, Tracer, OUTCOME_OK};
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fig9_def(advanced: bool) -> WorkflowDefinition {
    let b = WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D");
    if advanced { b.with_tfc("TFC") } else { b }.build().unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("recon-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

/// Drive one fully instrumented Fig. 9 instance and return the recorded
/// trace plus the final document.
fn instrumented_run(
    advanced: bool,
    hostile: bool,
    crash: bool,
    seed: u64,
) -> (Vec<TraceEvent>, DraDocument) {
    let (creds, dir) = cast();
    let def = fig9_def(advanced);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let plan = if crash {
        CrashPlan::once(CrashPoint::AeaBeforeSign, 1 + seed % 9)
    } else {
        CrashPlan::none()
    };
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
        .with_crash_plan(Arc::clone(&plan))
        .with_tracer(tracer.clone());
    let delivery = if hostile {
        Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            seed,
        )
        .unwrap()
    } else {
        Delivery::lossless(Arc::clone(&network))
    }
    .with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone())
                .with_crash_hook(plan.hook())
                .with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let tfc = advanced.then(|| {
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
        TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1_000))
            .with_crash_hook(plan.hook())
            .with_tracer(tracer.clone())
    });
    let policy = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };
    let initial = DraDocument::new_initial_with_pid(&def, &policy, &creds[0], "recon-run").unwrap();
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .network(&delivery)
        .tracer(tracer.clone());
    if let Some(server) = tfc.as_ref() {
        run = run.tfc(server);
    }
    let out = run.run().unwrap();
    assert_eq!(out.steps, 9);
    if crash {
        assert_eq!(plan.crashes_injected(), 1, "the scheduled crash fired");
    }
    (tracer.events(), out.document.document().clone())
}

/// Indices of the successful hop events — the ones the oracle matches
/// against the document's cascade.
fn ok_hops(events: &[TraceEvent]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.stage == stage::HOP && e.outcome == OUTCOME_OK)
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn honest_traces_reconcile_both_models() {
    for advanced in [false, true] {
        let (events, doc) = instrumented_run(advanced, false, false, 0);
        let report = reconcile(&events, &doc).unwrap();
        assert_eq!(report.hops_matched, 9);
        assert_eq!(report.crashed_attempts, 0);
        if advanced {
            assert_eq!(report.timestamps_witnessed, 9, "every CER timestamp witnessed");
        }
    }
}

#[test]
fn honest_traces_reconcile_under_faults_and_crashes() {
    for advanced in [false, true] {
        for (hostile, crash) in [(true, false), (false, true), (true, true)] {
            for seed in [1, 7, 42] {
                let (events, doc) = instrumented_run(advanced, hostile, crash, seed);
                let report = reconcile(&events, &doc).unwrap_or_else(|e| {
                    panic!("advanced={advanced} hostile={hostile} crash={crash} seed={seed}: {e}")
                });
                assert_eq!(report.hops_matched, 9);
                if crash {
                    assert_eq!(
                        report.crashed_attempts, 1,
                        "the crashed attempt is visible in the trace but proves nothing"
                    );
                }
            }
        }
    }
}

#[test]
fn reordered_trace_detected() {
    let (mut events, doc) = instrumented_run(false, false, false, 0);
    let hops = ok_hops(&events);
    // swap the first two executions the document proves in cascade order
    events.swap(hops[0], hops[1]);
    let err = reconcile(&events, &doc).unwrap_err();
    match &err {
        ReconcileError::OrderMismatch { position, .. } => assert_eq!(*position, 0),
        other => panic!("expected OrderMismatch, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("A#0") && msg.contains("B1#0"),
        "diagnostic names both sides of the divergence: {msg}"
    );
}

#[test]
fn dropped_hop_detected() {
    let (mut events, doc) = instrumented_run(false, false, false, 0);
    let hops = ok_hops(&events);
    let dropped = events.remove(hops[2]);
    let err = reconcile(&events, &doc).unwrap_err();
    match &err {
        ReconcileError::MissingFromTrace { position, expected } => {
            assert_eq!(*position, 2);
            assert_eq!(expected.activity, dropped.activity);
            assert_eq!(expected.iter, dropped.iter);
        }
        other => panic!("expected MissingFromTrace, got {other}"),
    }
    assert!(err.to_string().contains(&dropped.activity));
}

#[test]
fn forged_participant_detected() {
    let (mut events, doc) = instrumented_run(false, false, false, 0);
    let hops = ok_hops(&events);
    // the trace claims mallory executed the hop the document proves p_a did
    events[hops[0]].actor = "mallory".into();
    let err = reconcile(&events, &doc).unwrap_err();
    match &err {
        ReconcileError::ParticipantMismatch { document, trace, .. } => {
            assert_eq!(document.as_str(), "p_a");
            assert_eq!(trace.as_str(), "mallory");
        }
        other => panic!("expected ParticipantMismatch, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("mallory") && msg.contains("p_a"), "diagnostic names both: {msg}");
}

#[test]
fn fabricated_execution_detected() {
    let (mut events, doc) = instrumented_run(false, false, false, 0);
    // the trace claims a tenth execution the cascade never signed
    let hops = ok_hops(&events);
    let mut forged = events[hops[8]].clone();
    forged.activity = "D".into();
    forged.iter = 1;
    events.push(forged);
    let err = reconcile(&events, &doc).unwrap_err();
    assert!(
        matches!(err, ReconcileError::UnprovenExecution { position: 9, .. }),
        "expected UnprovenExecution, got {err}"
    );
}

#[test]
fn forged_timestamp_detected() {
    let (mut events, doc) = instrumented_run(true, false, false, 0);
    // rewrite one tfc:timestamp witness: the trace now claims a different
    // time than the one the TFC signed into the document
    let idx = events
        .iter()
        .position(|e| e.stage == stage::TFC_TIMESTAMP)
        .expect("advanced run records timestamp spans");
    for attr in events[idx].attrs.iter_mut() {
        if attr.0 == "ts_ms" {
            attr.1 = "999999".into();
        }
    }
    let err = reconcile(&events, &doc).unwrap_err();
    assert!(
        matches!(err, ReconcileError::TimestampMismatch { .. }),
        "expected TimestampMismatch, got {err}"
    );
}

/// Honest pattern run through the shared fuzz cast, returning the trace
/// and final document for document-side forgery.
fn pattern_run(
    def: WorkflowDefinition,
    script: &[(&str, &[(&str, &str)])],
) -> (Vec<TraceEvent>, DraDocument) {
    let gw = dra_bench::fuzz::GeneratedWorkflow {
        seed: 0,
        def,
        script: script
            .iter()
            .map(|(a, rs)| {
                (a.to_string(), rs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect())
            })
            .collect(),
    };
    let art = dra_bench::fuzz::run_generated(&gw, false, dra_bench::fuzz::Variant::Honest).unwrap();
    reconcile(&art.events, &art.document).expect("honest pattern run reconciles");
    (art.events, art.document)
}

#[test]
fn forged_cancellation_violation_detected() {
    // honest run: T completes and cancels V, so V never executes. The
    // attack appends an (unsigned) V CER to the document — reconcile's
    // cascade-semantics pass must flag the execution of a cancelled hop
    // even though the trace itself is untouched.
    let def = WorkflowDefinition::builder("recon-cancel", "designer")
        .simple_activity("F", "p0", &["f"])
        .simple_activity("T", "p1", &["f"])
        .simple_activity("V", "p2", &["f"])
        .activity(Activity {
            id: "J".into(),
            participant: "p3".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("F", "T")
        .flow("F", "V")
        .flow("T", "J")
        .flow("V", "J")
        .cancel_on("T", &["V"])
        .flow_end("J")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] =
        &[("F", &[("f", "fork")]), ("T", &[("f", "trig")]), ("J", &[("f", "after")])];
    let (events, doc) = pattern_run(def, script);
    // splice an unsigned V CER in front of the join's CER: the cascade now
    // claims the victim ran after the trigger had already cancelled it
    let wire = doc.to_xml_string();
    let at = wire.find("<CER activity=\"J\"").expect("join executed");
    let phantom = "<CER activity=\"V\" iter=\"0\" participant=\"p2\" preds=\"Def\"><Result/></CER>";
    let forged = DraDocument::parse(&format!("{}{}{}", &wire[..at], phantom, &wire[at..])).unwrap();
    let err = reconcile(&events, &forged).unwrap_err();
    match err {
        ReconcileError::CancelledExecution { key, trigger, .. } => {
            assert_eq!(format!("{key}"), "V#0");
            assert_eq!(trigger, "T");
        }
        other => panic!("expected CancelledExecution, got {other}"),
    }
}

#[test]
fn phantom_branch_or_join_detected() {
    // honest run: both branches deliver before the OR-join fires. The
    // attack moves the long branch's final CER behind the join's, making
    // the cascade claim the merge fired while that branch was still to
    // deliver — the join law must flag it.
    let def = WorkflowDefinition::builder("recon-or", "designer")
        .simple_activity("A", "p0", &["f"])
        .simple_activity("L", "p1", &["f"])
        .simple_activity("R1", "p2", &["f"])
        .simple_activity("R2", "p3", &["f"])
        .activity(Activity {
            id: "J".into(),
            participant: "p0".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("A", "L")
        .flow("A", "R1")
        .flow("R1", "R2")
        .flow("L", "J")
        .flow("R2", "J")
        .flow_end("J")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] = &[
        ("A", &[("f", "a")]),
        ("L", &[("f", "l")]),
        ("R1", &[("f", "r1")]),
        ("R2", &[("f", "r2")]),
        ("J", &[("f", "j")]),
    ];
    let (events, doc) = pattern_run(def, script);
    let wire = doc.to_xml_string();
    let start = wire.find("<CER activity=\"R2\"").expect("R2 executed");
    let end = start + wire[start..].find("</CER>").unwrap() + "</CER>".len();
    let r2 = wire[start..end].to_string();
    let without = format!("{}{}", &wire[..start], &wire[end..]);
    let tail = without.find("</ActivityResults>").unwrap();
    let forged =
        DraDocument::parse(&format!("{}{}{}", &without[..tail], r2, &without[tail..])).unwrap();
    let err = reconcile(&events, &forged).unwrap_err();
    match err {
        ReconcileError::JoinMissingBranch { join, branch, .. } => {
            assert_eq!(format!("{join}"), "J#0");
            assert_eq!(branch, "R2");
        }
        other => panic!("expected JoinMissingBranch, got {other}"),
    }
}

#[test]
fn disabled_tracer_records_nothing_and_cannot_reconcile() {
    let tracer = Tracer::disabled();
    let mut span = tracer.span(stage::HOP).actor("x");
    span.attr("k", "v");
    span.end();
    assert!(tracer.events().is_empty());

    // an empty trace fails against a document that proves executions
    let (_, doc) = instrumented_run(false, false, false, 0);
    let err = reconcile(&[], &doc).unwrap_err();
    assert!(matches!(err, ReconcileError::MissingFromTrace { position: 0, .. }));
}
