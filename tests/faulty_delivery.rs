//! Integration: fault-tolerant document delivery (claims C7 of DESIGN.md).
//!
//! The contract under test — "a fault can cost time, never safety":
//!
//! * any run over a lossy channel (drop/duplicate/reorder/delay under the
//!   retry budget) completes with a final document **byte-identical** to
//!   the lossless run, and the pool holds exactly the same versions;
//! * the same seed + profile reproduces the same [`DeliveryStats`] and the
//!   same bytes (pinned determinism);
//! * corrupted in-flight copies are rejected at the portal and are never
//!   stored — at worst the run fails with a delivery error, with nothing
//!   admitted to the pool.

use dra4wfms::cloud::{
    CloudSystem, Delivery, DeliveryPolicy, DeliveryStats, FaultProfile, InstanceRun, NetworkSim,
};
use dra4wfms::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// AND-split / AND-join workflow with a loop, as in the paper's Fig. 9A.
/// Public policy: signatures are deterministic, so independent runs of the
/// same instance produce byte-identical documents — the basis of every
/// byte-equality assertion below. (Encrypted fields use random nonces and
/// would differ between runs by design.)
fn split_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("faulty", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("fd-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn agents(creds: &[Credentials], dir: &Directory) -> HashMap<String, Arc<Aea>> {
    creds.iter().map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone())))).collect()
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        other => panic!("unexpected {other}"),
    }
}

/// Run the Fig. 9A-style instance over `profile` (None = direct path).
/// Returns the system, the final document, and the delivery stats.
fn run(
    pid: &str,
    profile: Option<(FaultProfile, DeliveryPolicy, u64)>,
) -> (CloudSystem, SealedDocument, Option<DeliveryStats>) {
    let (creds, dir) = cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network));
    let initial =
        DraDocument::new_initial_with_pid(&split_def(), &SecurityPolicy::public(), &creds[0], pid)
            .unwrap();
    let ags = agents(&creds, &dir);
    let delivery = profile
        .map(|(p, policy, seed)| Delivery::new(Arc::clone(&network), p, policy, seed).unwrap());
    let mut builder =
        InstanceRun::new(&sys, &initial).agents(&ags).respond(&respond).max_steps(100);
    if let Some(d) = delivery.as_ref() {
        builder = builder.network(d);
    }
    let out = builder.run().unwrap();
    assert_eq!(out.steps, 9, "A,B1,B2,C ×2 + D");
    (sys, out.document, out.delivery)
}

/// All stored versions of `pid`, in sequence order.
fn stored_versions(sys: &CloudSystem, pid: &str) -> Vec<String> {
    (0..).map_while(|seq| sys.retrieve_version(pid, seq)).collect()
}

#[test]
fn lossy_run_matches_lossless_byte_for_byte() {
    let (clean_sys, clean_doc, none) = run("match", None);
    assert!(none.is_none());
    let (lossy_sys, lossy_doc, stats) =
        run("match", Some((FaultProfile::lossy(0.15), DeliveryPolicy::default(), 42)));
    let stats = stats.unwrap();

    // identical final bytes and identical pool content, despite the faults
    assert_eq!(*clean_doc.wire(), *lossy_doc.wire(), "final document byte-identical");
    let clean_versions = stored_versions(&clean_sys, "match");
    let lossy_versions = stored_versions(&lossy_sys, "match");
    assert_eq!(clean_versions.len(), 10, "initial + 9 steps");
    assert_eq!(clean_versions, lossy_versions, "every stored version byte-identical");

    // every stored version still verifies in full
    let (_, dir) = cast();
    for xml in &lossy_versions {
        Verifier::new(&dir).run(&DraDocument::parse(xml).unwrap()).unwrap();
    }

    // faults showed up and cost time, not correctness
    assert!(stats.faults.dropped + stats.faults.duplicated > 0, "profile injected faults");
    assert!(stats.attempts >= stats.sends);
    assert!(stats.inflation() >= 1.0);
}

#[test]
fn same_seed_and_profile_reproduce_stats_and_bytes() {
    let cfg = (FaultProfile::hostile(), DeliveryPolicy::default(), 7u64);
    let (_, doc_a, stats_a) = run("det", Some(cfg));
    let (_, doc_b, stats_b) = run("det", Some(cfg));
    assert_eq!(stats_a.unwrap(), stats_b.unwrap(), "same seed ⇒ same DeliveryStats");
    assert_eq!(*doc_a.wire(), *doc_b.wire(), "same seed ⇒ same final bytes");

    // a different seed draws a different fault schedule (same outcome)
    let (_, doc_c, stats_c) =
        run("det", Some((FaultProfile::hostile(), DeliveryPolicy::default(), 8)));
    assert_eq!(*doc_a.wire(), *doc_c.wire(), "outcome is seed-independent");
    assert_ne!(stats_a.unwrap(), stats_c.unwrap(), "fault schedule is not");
}

#[test]
fn corrupted_copies_are_rejected_and_never_stored() {
    // every copy is corrupted in flight: the portal must reject each one,
    // the sender exhausts its budget, and nothing enters the pool
    let profile = FaultProfile { corrupt: 1.0 - 1e-12, ..FaultProfile::lossless() };
    let (creds, dir) = cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 1, Arc::clone(&network));
    let initial = DraDocument::new_initial_with_pid(
        &split_def(),
        &SecurityPolicy::public(),
        &creds[0],
        "corrupt",
    )
    .unwrap();
    let delivery =
        Delivery::new(Arc::clone(&network), profile, DeliveryPolicy::default(), 3).unwrap();
    let ags = agents(&creds, &dir);
    let err = InstanceRun::new(&sys, &initial)
        .agents(&ags)
        .respond(&respond)
        .network(&delivery)
        .run()
        .unwrap_err();
    assert!(matches!(err, WfError::Delivery(_)), "budget exhausted: {err}");

    // never safety: no corrupted bytes were admitted
    assert_eq!(sys.total_stored(), 0);
    assert!(stored_versions(&sys, "corrupt").is_empty());
    let stats = delivery.stats();
    assert_eq!(stats.corruptions_rejected, stats.attempts, "every copy rejected");
    assert!(stats.retries > 0);
}

#[test]
fn heavy_duplication_never_grows_the_pool() {
    let profile = FaultProfile { duplicate: 1.0 - 1e-12, ..FaultProfile::lossless() };
    let (sys, doc, stats) = run("dup", Some((profile, DeliveryPolicy::default(), 11)));
    let stats = stats.unwrap();
    assert!(stats.faults.duplicated >= 10, "every send duplicated");
    assert!(stats.duplicates_suppressed >= 10, "portal suppressed the extra copies");
    assert_eq!(stored_versions(&sys, "dup").len(), 10, "no phantom versions");
    let (_, dir) = cast();
    Verifier::new(&dir).run(&doc).unwrap();
}

#[test]
fn direct_path_and_delivery_path_charge_the_network_once() {
    // lossless delivery: the channel charges exactly one physical copy per
    // hop, i.e. the same bytes the direct path charges
    let (clean_sys, _, _) = run("charge", None);
    let (lossy_sys, _, stats) =
        run("charge", Some((FaultProfile::lossless(), DeliveryPolicy::default(), 1)));
    let stats = stats.unwrap();
    assert_eq!(stats.retries, 0);
    assert_eq!(clean_sys.network.bytes(), lossy_sys.network.bytes(), "no double counting");
    assert_eq!(stats.virtual_time_us, stats.ideal_time_us);
    assert!((stats.inflation() - 1.0).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fault schedule under the retry budget yields a completed run
    /// whose final document is byte-identical to the lossless run, with no
    /// unverified bytes in the pool.
    #[test]
    fn prop_faulty_runs_converge_to_the_lossless_outcome(
        drop_pct in 0u32..25,
        dup_pct in 0u32..25,
        reorder_pct in 0u32..25,
        corrupt_pct in 0u32..10,
        delay in 0u64..5_000,
        seed in 0u64..1_000_000,
    ) {
        let profile = FaultProfile {
            drop: drop_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            reorder: reorder_pct as f64 / 100.0,
            corrupt: corrupt_pct as f64 / 100.0,
            delay_max_us: delay,
        };
        // a roomier budget than the default: the property quantifies over
        // adversarial schedules, not over the default policy's tuning
        let policy = DeliveryPolicy { max_attempts: 16, ..DeliveryPolicy::default() };
        let (clean_sys, clean_doc, _) = run("prop", None);
        let (lossy_sys, lossy_doc, stats) = run("prop", Some((profile, policy, seed)));
        let stats = stats.unwrap();

        prop_assert_eq!(&*clean_doc.wire(), &*lossy_doc.wire());
        prop_assert_eq!(
            stored_versions(&clean_sys, "prop"),
            stored_versions(&lossy_sys, "prop")
        );
        prop_assert!(stats.attempts <= stats.sends * 16, "bounded retry overhead");
        // time may inflate; the document pool may not
        prop_assert!(stats.inflation() >= 1.0);
    }
}
