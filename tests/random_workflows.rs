//! Property-based integration tests: randomly generated workflows are
//! executed end to end through real AEAs; the resulting documents must
//! always verify, always bind the cascade, and always detect bit-level
//! tampering.
//!
//! The pattern-rich properties at the bottom draw from the same seeded
//! generator the differential fuzzer uses (`dra_bench::fuzz`), so the
//! corpus the proptests shrink over is exactly the corpus CI fuzzes.

use dra4wfms::prelude::*;
use dra_bench::fuzz;
use proptest::prelude::*;

/// Deterministic cast shared by the generated workflows.
fn cast(n: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "rw-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("rw-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

/// Run a linear workflow of `len` steps where step i's field audience is
/// restricted iff `restrict[i]`, with `values[i]` as responses.
fn run_linear(
    len: usize,
    restrict: &[bool],
    values: &[String],
) -> (DraDocument, Directory, SecurityPolicy) {
    let (creds, dir) = cast(len);
    let mut b = WorkflowDefinition::builder("gen", "designer");
    for i in 0..len {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["f"]);
    }
    for i in 0..len - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    let def = b.flow_end(format!("S{}", len - 1)).build().unwrap();

    let mut pb = SecurityPolicy::builder();
    for (i, r) in restrict.iter().enumerate() {
        if *r {
            // audience: the next participant (or the previous one for the last)
            let reader = if i + 1 < len { format!("p{}", i + 1) } else { "p0".to_string() };
            pb = pb.restrict(format!("S{i}"), "f", &[&reader]);
        }
    }
    let pol = pb.build();

    let mut doc = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "rw-pid").unwrap();
    for i in 0..len {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let recv = aea.receive(doc.to_xml_string(), &format!("S{i}")).unwrap();
        doc = aea
            .complete(&recv, &[("f".into(), values[i].clone())])
            .unwrap()
            .document
            .into_document();
    }
    (doc, dir, pol)
}

fn arb_value() -> impl Strategy<Value = String> {
    // include XML-hostile characters to stress escaping + canonicalization
    proptest::string::string_regex("[ -~]{0,24}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated run produces a fully verifying document whose scopes
    /// are nested prefixes.
    #[test]
    fn generated_runs_always_verify(
        len in 2usize..6,
        restrict in proptest::collection::vec(any::<bool>(), 6),
        values in proptest::collection::vec(arb_value(), 6),
    ) {
        let (doc, dir, _) = run_linear(len, &restrict[..len], &values[..len]);
        let report = Verifier::new(&dir).run(&doc).unwrap().report;
        prop_assert_eq!(report.cers.len(), len);
        prop_assert_eq!(report.signatures_verified, len + 1);

        for i in 0..len {
            let scope = nonrepudiation_scope(
                &doc,
                &PredRef::Cer(CerKey::new(format!("S{i}"), 0)),
            ).unwrap();
            prop_assert_eq!(scope.len(), i + 2);
        }
    }

    /// Wire round trips never break verification (canonical stability).
    #[test]
    fn generated_runs_survive_reserialization(
        len in 2usize..5,
        values in proptest::collection::vec(arb_value(), 5),
    ) {
        let (doc, dir, _) = run_linear(len, &vec![false; len], &values[..len]);
        let once = DraDocument::parse(&doc.to_xml_string()).unwrap();
        let twice = DraDocument::parse(&once.to_xml_string()).unwrap();
        Verifier::new(&dir).run(&twice).unwrap();
    }

    /// Flipping any single byte of a signature value breaks verification.
    #[test]
    fn signature_bitflips_detected(
        len in 2usize..4,
        values in proptest::collection::vec(arb_value(), 4),
        which in any::<prop::sample::Index>(),
    ) {
        let (doc, dir, _) = run_linear(len, &vec![false; len], &values[..len]);
        let cers = doc.cers().unwrap();
        let cer = &cers[which.index(cers.len())];
        let sig_text = cer.participant_signature().unwrap().text_content();
        // flip one hex digit
        let flipped = {
            let mut s = sig_text.clone();
            let c = s.remove(0);
            s.insert(0, if c == '0' { '1' } else { '0' });
            s
        };
        let xml = doc.to_xml_string().replace(&sig_text, &flipped);
        prop_assume!(xml != doc.to_xml_string());
        let parsed = DraDocument::parse(&xml).unwrap();
        prop_assert!(Verifier::new(&dir).run(&parsed).is_err());
    }

    /// Restricted fields stay unreadable to outsiders across the whole run.
    #[test]
    fn restricted_fields_stay_confidential(
        len in 2usize..5,
        values in proptest::collection::vec(arb_value(), 5),
    ) {
        // restrict every field
        let (doc, dir, _) = run_linear(len, &vec![true; len], &values[..len]);
        Verifier::new(&dir).run(&doc).unwrap();
        // an outsider with fresh keys can read nothing restricted
        let outsider = Credentials::from_seed("outsider", "rw-outsider");
        use dra4wfms::core::fields::read_field_from_result;
        for cer in doc.cers().unwrap() {
            let result = cer.result().unwrap();
            let got = read_field_from_result(
                result,
                &cer.key.activity,
                "f",
                "outsider",
                Some(&outsider),
            );
            let denied = matches!(got, Err(WfError::FieldNotReadable { .. }));
            prop_assert!(denied);
        }
        let _ = dir;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every pattern-rich definition the fuzz generator draws is accepted
    /// by the static soundness analysis (the generator only composes
    /// well-structured blocks — a rejection is an analysis bug).
    #[test]
    fn pattern_rich_definitions_are_sound(seed in any::<u64>()) {
        let gw = fuzz::generate(seed);
        let report = dra4wfms::core::soundness::check_soundness(&gw.def).unwrap();
        prop_assert!(report.states_explored > 0);
    }

    /// OR-joins, multi-instance annotations and cancellation regions all
    /// survive the definition's XML round trip and its DSL rendering.
    #[test]
    fn pattern_annotations_survive_roundtrips(seed in any::<u64>()) {
        let gw = fuzz::generate(seed);
        let back = WorkflowDefinition::from_xml(&gw.def.to_xml()).unwrap();
        prop_assert_eq!(&back, &gw.def);
        let reparsed = dra4wfms::core::dsl::parse_workflow(
            &dra4wfms::core::dsl::to_dsl(&gw.def),
        ).unwrap();
        prop_assert_eq!(&reparsed.multi, &gw.def.multi);
        prop_assert_eq!(&reparsed.cancellations, &gw.def.cancellations);
    }

    /// Downgrading a synchronizing join over exclusive branches always
    /// yields a definition the analysis rejects.
    #[test]
    fn poisoned_twins_are_rejected(seed in any::<u64>()) {
        let gw = fuzz::generate(seed);
        let twin = fuzz::poison(&gw.def).unwrap_or_else(fuzz::canned_deadlock);
        prop_assert!(dra4wfms::core::soundness::check_soundness(&twin).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Honest scheduler runs of pattern-rich workflows verify and
    /// reconcile cleanly against their span traces (the heavy end-to-end
    /// property; the full matrix runs in `claim_fuzz`).
    #[test]
    fn pattern_rich_runs_verify_and_reconcile(seed in any::<u64>()) {
        let gw = fuzz::generate(seed);
        let art = fuzz::run_generated(&gw, false, fuzz::Variant::Honest).unwrap();
        prop_assert!(art.steps > 0);
        prop_assert!(art.invariants.is_ok());
        reconcile(&art.events, &art.document).unwrap();
    }
}
