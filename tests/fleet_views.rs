//! Incremental fleet views and the continuous pool auditor, end to end.
//!
//! The claims under test, over real Fig. 9A instances:
//!
//! * a proptest: **random admission/crash/federation schedules** — hostile
//!   delivery faults, a seeded AEA crash takeover, single-cloud vs
//!   two-cloud federated deployments, varying fleet sizes — always leave
//!   every incremental view **byte-identical** to a fresh full MapReduce
//!   recompute over the scan API (`views ≡ scan`, cell-by-cell and as
//!   rendered JSON);
//! * a **torn portal store** (crash between the `seen/` row and the
//!   document row) never desynchronises the views, journal replay repairs
//!   the pool and the views together, and a cold restart reseeds the views
//!   from the pool snapshot mid-fleet;
//! * a **forged stored row** that no serve path ever touches — the serve
//!   side stays blind to it — is caught by the [`PoolAuditor`]'s batched
//!   spot-check with the exact key, exactly one typed alert, and zero
//!   false positives across repeated sweeps;
//! * on a federated deployment the same forgery, pumped through the
//!   [`FederationController`], quarantines every portal of the tampered
//!   cloud and fails admissions over to the honest peer.

use dra4wfms::cloud::{
    check_metric_invariants, AlertKind, AuditConfig, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
    PoolAuditor, Scheduler, Topology,
};
use dra4wfms::docpool::{HTable, Scan};
use dra4wfms::obs::MetricsRegistry;
use dra4wfms::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fig9_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![FieldRef::new("B1", "review1"), FieldRef::new("B2", "review2")],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("view-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        other => panic!("unexpected {other}"),
    }
}

fn initials(creds: &[Credentials], ids: std::ops::Range<usize>) -> Vec<DraDocument> {
    let def = fig9_def();
    let pol = SecurityPolicy::public();
    ids.map(|i| {
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], &format!("view-{i}")).unwrap()
    })
    .collect()
}

/// Drive the given instances through the event-driven scheduler (crash
/// hooks armed on every AEA), asserting each completes in exactly 9 steps.
#[allow(clippy::too_many_arguments)]
fn drive(
    sys: &CloudSystem,
    creds: &[Credentials],
    dir: &Directory,
    docs: &[DraDocument],
    plan: &Arc<CrashPlan>,
    delivery: Option<&Delivery>,
    monitor: Option<&Arc<HealthMonitor>>,
    metrics: Option<&MetricsRegistry>,
) {
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone()).with_crash_hook(plan.hook());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let mut sched = Scheduler::new(sys);
    for doc in docs {
        let mut run = InstanceRun::new(sys, doc).agents(&agents).respond(&respond).max_steps(100);
        if let Some(d) = delivery {
            run = run.network(d);
        }
        if let Some(m) = monitor {
            run = run.monitor(m);
        }
        if let Some(m) = metrics {
            run = run.metrics(m);
        }
        sched.admit_instance(run).unwrap();
    }
    for (pid, result) in sched.run_to_completion() {
        let out = result.unwrap_or_else(|e| panic!("{pid} failed to complete: {e}"));
        assert_eq!(out.steps, 9, "{pid}");
    }
}

/// Every face of the `views ≡ scan` differential at once: the cell-by-cell
/// diff and the byte-identity of the rendered pool view, at two thread
/// counts (parallel merge must not perturb the bytes).
fn assert_views_identical(sys: &CloudSystem) {
    sys.views_match_scan(1).expect("views ≡ scan (1 thread)");
    sys.views_match_scan(4).expect("views ≡ scan (4 threads)");
    let incremental = sys.fleet_views().pool_view_json();
    assert_eq!(incremental, sys.recompute_pool_view_json(1), "byte identity, 1 thread");
    assert_eq!(incremental, sys.recompute_pool_view_json(4), "byte identity, 4 threads");
}

/// Flip the case of one ASCII letter deep inside stored XML — a minimal
/// storage-layer corruption that breaks the signature cascade without
/// touching the row's key or shape.
fn forge(xml: &str) -> String {
    let mut bytes = xml.as_bytes().to_vec();
    let mid = bytes.len() / 2;
    let idx = (mid..bytes.len())
        .chain(0..mid)
        .find(|&i| bytes[i].is_ascii_alphabetic())
        .expect("xml contains a letter");
    bytes[idx] ^= 0x20;
    String::from_utf8(bytes).expect("an ASCII case flip preserves utf8")
}

/// A stored version of `pid` that is *not* the latest — the serve path
/// (always the max sequence) never reads it, only the auditor will.
fn mid_version_key(pool: &Arc<HTable>, pid: &str) -> String {
    let rows = pool.query(&Scan::prefix(&format!("doc/{pid}/")).family("meta")).rows;
    assert!(rows.len() > 2, "{pid} stored too few versions to pick a non-latest one");
    rows[1].0.clone()
}

/// Run enough auditor passes to complete at least one full sweep of every
/// pool, advancing the virtual `clock` by the configured period each pass.
fn full_sweep(
    auditor: &PoolAuditor,
    sys: &CloudSystem,
    monitor: Option<&HealthMonitor>,
    clock: &mut u64,
) {
    let batch = auditor.config().batch;
    let period = auditor.config().period_us;
    let rows = sys
        .audit_pools()
        .iter()
        .map(|(_, _, pool)| pool.query_count(&Scan::prefix("doc/")))
        .max()
        .unwrap_or(0);
    for _ in 0..rows.div_ceil(batch) + 1 {
        assert!(auditor.due(*clock), "the sampler keeps its period");
        auditor.run_pass(sys, monitor, *clock);
        *clock += period;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random admission/crash/federation schedules: hostile delivery
    /// faults under a fresh seed, one seeded AEA crash takeover, a fleet
    /// of 1–3 instances, on either a single-cloud or a two-cloud federated
    /// deployment — after every run the incremental views are
    /// byte-identical to a fresh full MapReduce recompute, and (single
    /// cloud) survive a cold restart from the pool snapshot.
    #[test]
    fn random_schedules_keep_views_identical_to_recompute(
        fault_seed in 0u64..1_000,
        crash_nth in 1u64..6,
        n in 1usize..4,
        federated in any::<bool>(),
    ) {
        let (creds, dir) = cast();
        let network = Arc::new(NetworkSim::lan());
        let plan = CrashPlan::once(CrashPoint::AeaBeforeSign, crash_nth);
        let sys = if federated {
            CloudSystem::federated(
                dir.clone(),
                Topology::new().cloud("east", 2).cloud("west", 2),
                Arc::clone(&network),
            )
            .unwrap()
        } else {
            CloudSystem::new(dir.clone(), 4, Arc::clone(&network))
        }
        .with_crash_plan(Arc::clone(&plan));
        let delivery = Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            fault_seed,
        )
        .unwrap();

        drive(&sys, &creds, &dir, &initials(&creds, 0..n), &plan, Some(&delivery), None, None);
        prop_assert_eq!(plan.crashes_injected(), 1, "the scheduled crash fired");

        assert_views_identical(&sys);
        let counts = sys.fleet_views().status_counts();
        prop_assert_eq!(counts.get("complete").copied().unwrap_or(0), n as u64);
        for i in 0..n {
            prop_assert_eq!(sys.fleet_views().progress()[&format!("view-{i}")], 10);
        }

        // the dashboard renders the same bytes on every read
        prop_assert_eq!(sys.fleet_dashboard_json(), sys.fleet_dashboard_json());

        if !federated {
            // cold restart: the views are memory, the pool is truth
            let restored = CloudSystem::restore(
                dir.clone(),
                4,
                Arc::new(NetworkSim::lan()),
                &sys.snapshot_pool(),
            )
            .unwrap();
            assert_views_identical(&restored);
            prop_assert_eq!(
                restored.fleet_views().pool_view_json(),
                sys.fleet_views().pool_view_json(),
                "a restart changes no view bytes"
            );
        }
    }
}

/// A torn portal store (crash between the `seen/` row and the document
/// row) leaves views ≡ scan through the crash window, journal replay
/// repairs both together, and the fleet keeps running on the recovered
/// deployment; a cold restart mid-fleet reseeds identical views.
#[test]
fn torn_store_recovery_keeps_views_and_fleet_consistent() {
    let (creds, dir) = cast();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()))
        .with_crash_plan(CrashPlan::once(CrashPoint::PortalBetweenSeenAndStore, 1));

    // the very first admission tears mid-store
    let torn = &initials(&creds, 7..8)[0];
    let route = Route { targets: vec!["A".into()], ends: false };
    assert!(sys.store_document(0, &torn.to_xml_string(), &route).is_err());
    assert_views_identical(&sys);

    assert_eq!(sys.recover_portals(), 1, "journal replay repairs the torn admission");
    assert_views_identical(&sys);
    assert_eq!(sys.fleet_views().status_counts()["running"], 1);

    // the fleet continues on the recovered deployment (the crash plan is
    // spent, so these run clean)
    drive(&sys, &creds, &dir, &initials(&creds, 0..2), &CrashPlan::none(), None, None, None);
    assert_views_identical(&sys);
    let counts = sys.fleet_views().status_counts();
    assert_eq!(counts["complete"], 2);
    assert_eq!(counts["running"], 1);

    // cold restart mid-fleet: reseeded views carry the same bytes
    let restored =
        CloudSystem::restore(dir.clone(), 2, Arc::new(NetworkSim::lan()), &sys.snapshot_pool())
            .unwrap();
    assert_views_identical(&restored);
    assert_eq!(restored.fleet_views().pool_view_json(), sys.fleet_views().pool_view_json());
    assert_eq!(restored.fleet_views().progress()["view-7"], 1);
}

/// Forge a stored mid-sequence row that no serve path ever reads: the
/// serve side stays blind, the auditor's batched spot-check catches the
/// exact key with exactly one typed alert and zero false positives, and
/// the metric invariants hold with the forgery declared.
#[test]
fn auditor_catches_a_forged_stored_row_the_serve_path_never_sees() {
    let (creds, dir) = cast();
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let metrics = MetricsRegistry::new();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    drive(
        &sys,
        &creds,
        &dir,
        &initials(&creds, 0..3),
        &CrashPlan::none(),
        None,
        Some(&monitor),
        Some(&metrics),
    );

    let key = mid_version_key(&sys.pool, "view-1");
    let honest_latest = sys.retrieve_latest(0, "view-1").expect("latest version serves");
    let xml = sys.pool.get_str(&key, "doc", "xml").expect("target row holds xml");
    sys.pool.put(&key, "doc", "xml", forge(&xml));

    // the serve path reads only the latest version — it stays blind
    assert_eq!(sys.retrieve_latest(0, "view-1").unwrap(), honest_latest);
    assert!(monitor.alerts().is_empty(), "no alert before the auditor runs");
    // and the forgery is invisible to the views: same keys, same statuses
    assert_views_identical(&sys);

    let auditor = PoolAuditor::new(AuditConfig { batch: 4, period_us: 1_000, threads: 2 });
    let mut clock = 0u64;
    full_sweep(&auditor, &sys, Some(&monitor), &mut clock);
    // a second full sweep re-samples the same forged row without re-alerting
    full_sweep(&auditor, &sys, Some(&monitor), &mut clock);

    assert_eq!(
        auditor.divergent_rows(),
        vec![("cloud0".to_string(), key.clone())],
        "exactly the forged row, nothing else"
    );
    let alerts = monitor.alerts();
    assert_eq!(alerts.len(), 1, "one forged row, one alert, ever");
    assert_eq!(alerts[0].process_id, "view-1");
    match &alerts[0].kind {
        AlertKind::AuditDivergence { cloud, key: alert_key } => {
            assert_eq!(*cloud, 0);
            assert_eq!(alert_key, &key);
        }
        other => panic!("expected an audit_divergence alert, got {other:?}"),
    }

    metrics.set_counter("audit.tampered_rows", 1);
    sys.export_metrics(&metrics);
    auditor.export_metrics(&metrics);
    monitor.export_metrics(&metrics);
    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.counter("audit.divergences"), 1);
    assert_eq!(snapshot.counter("alerts.audit_divergence"), 1);
    check_metric_invariants(&snapshot).expect("a declared forgery satisfies the invariants");
}

/// The same forgery on a federated deployment: the audit alert, pumped
/// through the federation controller, quarantines every portal of the
/// tampered cloud and fails admissions over to the honest peer — while
/// the views, which track keys and statuses rather than bytes, stay
/// identical to the recompute throughout.
#[test]
fn federated_forgery_quarantines_the_tampered_cloud_when_pumped() {
    let (creds, dir) = cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::federated(
        dir.clone(),
        Topology::new().cloud("east", 2).cloud("west", 2),
        Arc::clone(&network),
    )
    .unwrap();
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let ctrl = Arc::clone(sys.federation_controller().unwrap());
    ctrl.set_monitor(&monitor);
    let metrics = MetricsRegistry::new();
    drive(
        &sys,
        &creds,
        &dir,
        &initials(&creds, 0..2),
        &CrashPlan::none(),
        None,
        Some(&monitor),
        Some(&metrics),
    );

    // forge one non-latest row on the active cloud only — its replica on
    // the honest peer keeps the true bytes
    let (east_name, _, east_pool) = sys.audit_pools().into_iter().next().unwrap();
    assert_eq!(east_name, "east");
    let key = mid_version_key(&east_pool, "view-0");
    let xml = east_pool.get_str(&key, "doc", "xml").unwrap();
    east_pool.put(&key, "doc", "xml", forge(&xml));

    let auditor = PoolAuditor::new(AuditConfig::default());
    full_sweep(&auditor, &sys, Some(&monitor), &mut 0u64);
    assert_eq!(auditor.divergent_rows(), vec![("east".to_string(), key)]);

    sys.federation_poll();
    let stats = ctrl.stats();
    assert_eq!(stats.quarantines, 2, "both east portals frozen");
    assert_eq!(stats.failovers, 1, "admissions fail over to west");
    assert_eq!(stats.active_cloud, 1);
    assert_views_identical(&sys);

    metrics.set_counter("audit.tampered_rows", 1);
    sys.export_metrics(&metrics);
    auditor.export_metrics(&metrics);
    monitor.export_metrics(&metrics);
    check_metric_invariants(&metrics.snapshot()).unwrap();
}
