//! Integration: the `dra` CLI — a full cross-enterprise exchange done
//! entirely through files, as two companies would.

use dra4wfms::cli::run;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("dra-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn cli(args: &[&str]) -> Result<String, String> {
    run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

const WORKFLOW: &str = r#"
workflow "cli-order" designer "designer"
activity submit by alice {
    respond amount, note
}
activity approve by bob {
    request submit.amount
    respond decision
}
flow submit -> approve
flow approve -> end
"#;

const POLICY: &str = "restrict submit.amount to bob\n";

#[test]
fn full_cli_lifecycle() {
    let tmp = TempDir::new("lifecycle");
    let keys = tmp.path("keys");
    std::fs::write(tmp.path("order.dsl"), WORKFLOW).unwrap();
    std::fs::write(tmp.path("order.policy"), POLICY).unwrap();

    // keygen for all actors
    for name in ["designer", "alice", "bob"] {
        let out = cli(&["keygen", name, "--keys", &keys]).unwrap();
        assert!(out.contains(name));
    }

    // init
    let out = cli(&[
        "init",
        "--workflow",
        &tmp.path("order.dsl"),
        "--policy",
        &tmp.path("order.policy"),
        "--designer",
        "designer",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-0.xml"),
    ])
    .unwrap();
    assert!(out.contains("initial document"));

    // verify the initial document
    let out = cli(&["verify", "--doc", &tmp.path("doc-0.xml"), "--keys", &keys]).unwrap();
    assert!(out.starts_with("OK"), "{out}");

    // alice executes submit
    let out = cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-0.xml"),
        "--activity",
        "submit",
        "--as",
        "alice",
        "--respond",
        "amount=120",
        "--respond",
        "note=team event",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-1.xml"),
    ])
    .unwrap();
    assert!(out.contains("routed to [\"approve\"]"), "{out}");

    // bob executes approve — sees the decrypted amount
    let out = cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-1.xml"),
        "--activity",
        "approve",
        "--as",
        "bob",
        "--respond",
        "decision=granted",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-2.xml"),
    ])
    .unwrap();
    assert!(out.contains("visible: submit.amount = 120"), "{out}");
    assert!(out.contains("process complete"), "{out}");

    // verify + status + scope on the final document
    let out = cli(&["verify", "--doc", &tmp.path("doc-2.xml"), "--keys", &keys]).unwrap();
    assert!(out.contains("2 CERs"), "{out}");
    assert!(out.contains("3 signatures"), "{out}");

    let out = cli(&["status", "--doc", &tmp.path("doc-2.xml")]).unwrap();
    assert!(out.contains("submit#0"));
    assert!(out.contains("approve#0"));

    let out = cli(&["scope", "--doc", &tmp.path("doc-2.xml"), "--cer", "approve#0"]).unwrap();
    assert!(out.contains("submit#0"));
    assert!(out.contains("Def"));
}

#[test]
fn cli_verify_rejects_tampering() {
    let tmp = TempDir::new("tamper");
    let keys = tmp.path("keys");
    std::fs::write(tmp.path("order.dsl"), WORKFLOW).unwrap();
    for name in ["designer", "alice", "bob"] {
        cli(&["keygen", name, "--keys", &keys]).unwrap();
    }
    cli(&[
        "init",
        "--workflow",
        &tmp.path("order.dsl"),
        "--designer",
        "designer",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-0.xml"),
    ])
    .unwrap();
    cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-0.xml"),
        "--activity",
        "submit",
        "--as",
        "alice",
        "--respond",
        "amount=120",
        "--respond",
        "note=n",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-1.xml"),
    ])
    .unwrap();

    // tamper the stored file
    let xml = std::fs::read_to_string(tmp.path("doc-1.xml")).unwrap();
    let tampered = xml.replace("120", "999999");
    assert_ne!(tampered, xml);
    std::fs::write(tmp.path("doc-1.xml"), tampered).unwrap();

    let errmsg = cli(&["verify", "--doc", &tmp.path("doc-1.xml"), "--keys", &keys]).unwrap_err();
    assert!(errmsg.contains("VERIFICATION FAILED"), "{errmsg}");
}

#[test]
fn cli_enforces_participant_and_args() {
    let tmp = TempDir::new("guards");
    let keys = tmp.path("keys");
    std::fs::write(tmp.path("order.dsl"), WORKFLOW).unwrap();
    for name in ["designer", "alice", "bob"] {
        cli(&["keygen", name, "--keys", &keys]).unwrap();
    }
    cli(&[
        "init",
        "--workflow",
        &tmp.path("order.dsl"),
        "--designer",
        "designer",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-0.xml"),
    ])
    .unwrap();

    // bob cannot execute alice's activity
    let errmsg = cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-0.xml"),
        "--activity",
        "submit",
        "--as",
        "bob",
        "--respond",
        "amount=1",
        "--respond",
        "note=n",
        "--keys",
        &keys,
        "--out",
        &tmp.path("never.xml"),
    ])
    .unwrap_err();
    assert!(errmsg.contains("participant"), "{errmsg}");

    // unknown command and missing flags produce helpful errors
    assert!(cli(&["frobnicate"]).unwrap_err().contains("unknown command"));
    assert!(cli(&["verify"]).unwrap_err().contains("--doc"));
    assert!(cli(&["keygen"]).unwrap_err().contains("usage"));
    // bad respond syntax
    let errmsg = cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-0.xml"),
        "--activity",
        "submit",
        "--as",
        "alice",
        "--respond",
        "amount:1",
        "--keys",
        &keys,
        "--out",
        &tmp.path("never.xml"),
    ])
    .unwrap_err();
    assert!(errmsg.contains("field=value"), "{errmsg}");
}

#[test]
fn cli_dot_and_help() {
    let tmp = TempDir::new("dot");
    std::fs::write(tmp.path("order.dsl"), WORKFLOW).unwrap();
    let dot = cli(&["dot", "--workflow", &tmp.path("order.dsl")]).unwrap();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("submit"));
    let help = cli(&["help"]).unwrap();
    assert!(help.contains("keygen"));
    assert!(cli(&[]).unwrap().contains("commands:"));
}

#[test]
fn cli_policy_parser_errors() {
    use dra4wfms::cli::parse_policy_file;
    assert!(parse_policy_file("restrict submit.amount to bob").is_ok());
    assert!(parse_policy_file("# comment only\n").is_ok());
    assert!(parse_policy_file("grant x to y").is_err());
    assert!(parse_policy_file("restrict noField to y").is_err());
    assert!(parse_policy_file("restrict a.b to ").is_err());
}

const ADVANCED_WORKFLOW: &str = r#"
workflow "cli-adv" designer "designer" tfc "notary"
activity submit by alice {
    respond amount
}
activity approve by bob {
    request submit.amount
    respond decision
}
flow submit -> approve
flow approve -> end
"#;

#[test]
fn full_cli_lifecycle_advanced_model() {
    let tmp = TempDir::new("advanced");
    let keys = tmp.path("keys");
    std::fs::write(tmp.path("adv.dsl"), ADVANCED_WORKFLOW).unwrap();
    for name in ["designer", "alice", "bob", "notary"] {
        cli(&["keygen", name, "--keys", &keys]).unwrap();
    }
    cli(&[
        "init",
        "--workflow",
        &tmp.path("adv.dsl"),
        "--designer",
        "designer",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-0.xml"),
    ])
    .unwrap();

    // alice executes — the definition names a TFC, so the CLI produces an
    // intermediate document
    let out = cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-0.xml"),
        "--activity",
        "submit",
        "--as",
        "alice",
        "--respond",
        "amount=55",
        "--keys",
        &keys,
        "--out",
        &tmp.path("inter-1.xml"),
    ])
    .unwrap();
    assert!(out.contains("sealed to the TFC"), "{out}");

    // the intermediate document does NOT verify as final…
    let out = cli(&["verify", "--doc", &tmp.path("inter-1.xml"), "--keys", &keys]).unwrap();
    assert!(out.contains("awaiting TFC"), "{out}");

    // …the notary finalizes it
    let out = cli(&[
        "tfc",
        "--doc",
        &tmp.path("inter-1.xml"),
        "--as",
        "notary",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-1.xml"),
    ])
    .unwrap();
    assert!(out.contains("TFC finalized submit#0"), "{out}");
    assert!(out.contains("route to [\"approve\"]"), "{out}");

    // bob completes through the TFC as well
    cli(&[
        "execute",
        "--doc",
        &tmp.path("doc-1.xml"),
        "--activity",
        "approve",
        "--as",
        "bob",
        "--respond",
        "decision=yes",
        "--keys",
        &keys,
        "--out",
        &tmp.path("inter-2.xml"),
    ])
    .unwrap();
    let out = cli(&[
        "tfc",
        "--doc",
        &tmp.path("inter-2.xml"),
        "--as",
        "notary",
        "--keys",
        &keys,
        "--out",
        &tmp.path("doc-2.xml"),
    ])
    .unwrap();
    assert!(out.contains("process complete"), "{out}");

    let out = cli(&["verify", "--doc", &tmp.path("doc-2.xml"), "--keys", &keys]).unwrap();
    assert!(out.contains("5 signatures"), "{out}");
    let out = cli(&["status", "--doc", &tmp.path("doc-2.xml")]).unwrap();
    assert!(out.contains("approve#0"), "{out}");
    assert!(out.contains("ms"), "TFC timestamps recorded: {out}");
}
