//! Integration: claim C3 — every class of after-the-fact tampering on a
//! DRA4WfMS document is detected, while the identical rewrite in the
//! engine-based baseline passes silently.

use dra4wfms::engine::WorkflowEngine;
use dra4wfms::prelude::*;

fn setup() -> (WorkflowDefinition, Directory, Vec<Credentials>) {
    let creds: Vec<Credentials> = ["designer", "alice", "bob"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("tamper-{n}")))
        .collect();
    let def = WorkflowDefinition::builder("transfer", "designer")
        .simple_activity("request", "alice", &["amount", "iban"])
        .activity(Activity {
            id: "approve".into(),
            participant: "bob".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("request", "amount")],
            responses: vec!["approval".into()],
        })
        .flow("request", "approve")
        .flow_end("approve")
        .build()
        .unwrap();
    let dir = Directory::from_credentials(&creds);
    (def, dir, creds)
}

/// Run the two-step workflow, returning the final genuine document.
fn run(def: &WorkflowDefinition, dir: &Directory, creds: &[Credentials]) -> DraDocument {
    let initial =
        DraDocument::new_initial_with_pid(def, &SecurityPolicy::public(), &creds[0], "tp").unwrap();
    let alice = Aea::new(creds[1].clone(), dir.clone());
    let recv = alice.receive(initial.to_xml_string(), "request").unwrap();
    let done = alice
        .complete(&recv, &[("amount".into(), "100".into()), ("iban".into(), "DE02...".into())])
        .unwrap();
    let bob = Aea::new(creds[2].clone(), dir.clone());
    let recv = bob.receive(done.document.to_xml_string(), "approve").unwrap();
    bob.complete(&recv, &[("approval".into(), "granted".into())]).unwrap().document.into_document()
}

fn assert_detected(xml: &str, dir: &Directory, what: &str) {
    match DraDocument::parse(xml) {
        Err(_) => {} // mangled beyond parsing — also "detected"
        Ok(doc) => {
            assert!(
                Verifier::new(dir).run(&doc).is_err(),
                "tamper class '{what}' must be detected"
            );
        }
    }
}

#[test]
fn field_value_rewrite_detected() {
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    let xml = doc.to_xml_string();
    let t = xml.replace(">100<", ">1000000<");
    assert_ne!(t, xml);
    assert_detected(&t, &dir, "field value rewrite");
}

#[test]
fn payee_rewrite_detected() {
    let (def, dir, creds) = setup();
    let xml = run(&def, &dir, &creds).to_xml_string();
    let t = xml.replace("DE02...", "MALLORY1");
    assert_ne!(t, xml);
    assert_detected(&t, &dir, "payee rewrite");
}

#[test]
fn participant_swap_detected() {
    let (def, dir, creds) = setup();
    let xml = run(&def, &dir, &creds).to_xml_string();
    // claim bob executed alice's activity
    let t = xml.replacen("participant=\"alice\"", "participant=\"bob\"", 1);
    assert_ne!(t, xml);
    assert_detected(&t, &dir, "participant swap");
}

#[test]
fn definition_rewrite_detected() {
    let (def, dir, creds) = setup();
    let xml = run(&def, &dir, &creds).to_xml_string();
    // reassign the approve activity inside the signed definition
    let t = xml.replace("participant=\"bob\"", "participant=\"alice\"");
    assert_ne!(t, xml);
    assert_detected(&t, &dir, "workflow definition rewrite");
}

#[test]
fn middle_cer_removal_detected() {
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    // strip alice's CER, keep bob's (which signs it)
    let mut stripped = doc.clone();
    let results = stripped.root.find_child_mut("ActivityResults").unwrap();
    let removed = results.children.remove(0);
    drop(removed);
    assert_detected(&stripped.to_xml_string(), &dir, "CER removal");
}

#[test]
fn signature_transplant_detected() {
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    // replace alice's signature with bob's (both valid signatures, wrong place)
    let xml = doc.to_xml_string();
    let cers = doc.cers().unwrap();
    let alice_sig = dra4wfms::xml::writer::to_string(cers[0].participant_signature().unwrap());
    let bob_sig = dra4wfms::xml::writer::to_string(cers[1].participant_signature().unwrap());
    let t = xml.replace(&alice_sig, &bob_sig);
    assert_ne!(t, xml);
    assert_detected(&t, &dir, "signature transplant");
}

#[test]
fn cross_instance_replay_detected() {
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    // graft the executed CERs onto a fresh instance with a different pid
    let mut fresh =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "other-pid")
            .unwrap();
    for cer in doc.cers().unwrap() {
        fresh.push_cer(cer.element.clone()).unwrap();
    }
    assert_detected(&fresh.to_xml_string(), &dir, "cross-instance replay");
}

#[test]
fn encrypted_field_swap_detected() {
    // encrypt the amount, then swap the whole EncryptedData blob with one
    // from another instance (ciphertext splice)
    let (def, dir, creds) = setup();
    let pol = SecurityPolicy::builder().restrict("request", "amount", &["bob"]).build();
    let make = |pid: &str, amount: &str| {
        let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], pid).unwrap();
        let alice = Aea::new(creds[1].clone(), dir.clone());
        let recv = alice.receive(initial.to_xml_string(), "request").unwrap();
        alice
            .complete(&recv, &[("amount".into(), amount.into()), ("iban".into(), "X".into())])
            .unwrap()
            .document
            .into_document()
    };
    let doc_a = make("pid-a", "100");
    let doc_b = make("pid-b", "999999");
    let enc_a = {
        let cer = &doc_a.cers().unwrap()[0];
        let r = cer.result().unwrap();
        dra4wfms::xml::writer::to_string(
            r.child_elements().find(|e| e.get_attr("field") == Some("amount")).unwrap(),
        )
    };
    let enc_b = {
        let cer = &doc_b.cers().unwrap()[0];
        let r = cer.result().unwrap();
        dra4wfms::xml::writer::to_string(
            r.child_elements().find(|e| e.get_attr("field") == Some("amount")).unwrap(),
        )
    };
    let spliced = doc_a.to_xml_string().replace(&enc_a, &enc_b);
    assert_ne!(spliced, doc_a.to_xml_string());
    assert_detected(&spliced, &dir, "ciphertext splice");
}

#[test]
fn stale_trust_mark_does_not_launder_prefix_tamper() {
    // Mallory holds a mark honestly issued over the genuine document and
    // attaches it to a tampered copy, hoping the verified-prefix fast path
    // skips the signature that would expose the rewrite.
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    let report = Verifier::new(&dir).run(&doc).unwrap().report;
    let mark = trust_mark_for(&doc, &report, 0).unwrap();

    let tampered_xml = doc.to_xml_string().replace(">100<", ">1000000<");
    assert_ne!(tampered_xml, doc.to_xml_string());
    let tampered = DraDocument::parse(&tampered_xml).unwrap();

    // the prefix digest no longer matches, so the full pass runs and fails
    let sealed = SealedDocument::with_trust(tampered, mark);
    assert!(
        Verifier::new(&dir).with_mark(sealed.trust()).run(&sealed).is_err(),
        "stale mark must not make a tampered prefix verify"
    );

    // the same laundering attempt against a portal is rejected at the door
    let sys = dra4wfms::cloud::CloudSystem::new(
        dir.clone(),
        1,
        std::sync::Arc::new(dra4wfms::cloud::NetworkSim::lan()),
    );
    let route = Route { targets: vec![], ends: true };
    assert!(sys.store_sealed(0, &sealed, &route).is_err());
    assert_eq!(sys.total_stored(), 0);
}

#[test]
fn trust_cache_does_not_launder_tampered_bytes() {
    // The portal's trust cache is keyed by the digest of the exact wire
    // bytes — tampering changes the digest, so the cache cannot vouch for
    // the rewritten document and the full pass exposes it.
    let (def, dir, creds) = setup();
    let doc = run(&def, &dir, &creds);
    let xml = doc.to_xml_string();
    let sys = dra4wfms::cloud::CloudSystem::new(
        dir.clone(),
        1,
        std::sync::Arc::new(dra4wfms::cloud::NetworkSim::lan()),
    );
    let route = Route { targets: vec![], ends: true };

    // genuine store: full pass (designer + 2 CERs) primes the cache
    sys.store_document(0, &xml, &route).unwrap();
    let stats = &sys.portals[0];
    let after_first = stats.signature_checks.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(after_first, 3);

    // byte-identical re-store: recognized as a duplicate by wire digest —
    // zero signature checks, and no second version enters the pool
    sys.store_document(0, &xml, &route).unwrap();
    assert_eq!(
        stats.signature_checks.load(std::sync::atomic::Ordering::Relaxed),
        after_first,
        "identical bytes must not be re-verified"
    );

    // tampered bytes: different digest, no dedup hit, no cache vouching —
    // the full pass fails loudly
    let t = xml.replace(">100<", ">1000000<");
    assert_ne!(t, xml);
    assert!(sys.store_document(0, &t, &route).is_err());
    assert_eq!(sys.total_stored(), 1, "only the genuine copy was admitted, once");
}

/// The contrast: the identical rewrite in the engine baseline is silent.
#[test]
fn engine_baseline_same_tamper_is_silent() {
    let (def, _, _) = setup();
    let engine = WorkflowEngine::new("e");
    let pid = engine.start_process(&def).unwrap();
    engine
        .execute_activity(
            pid,
            "request",
            "alice",
            &[("amount".into(), "100".into()), ("iban".into(), "DE02...".into())],
        )
        .unwrap();
    engine
        .execute_activity(pid, "approve", "bob", &[("approval".into(), "granted".into())])
        .unwrap();

    engine.superuser().alter_result(pid, "request", "amount", "1000000").unwrap();
    let inst = engine.get_instance(pid).unwrap();
    // the instance offers no verification API at all — the altered value
    // reads back as authoritative state
    assert_eq!(inst.field("request", "amount"), Some("1000000"));
}
