//! End-to-end workflow-pattern coverage through the event-driven scheduler:
//! OR-joins (synchronizing merges) that genuinely park and resume,
//! multi-instance activities with static and runtime cardinality,
//! cancellation regions that withdraw queued work, and design-time
//! soundness rejection at both admission gates (`Scheduler::admit_instance`
//! and the portal store path used by the legacy runner).

use dra4wfms::cloud::{check_metric_invariants, CloudSystem, InstanceRun, NetworkSim, Scheduler};
use dra4wfms::obs::{MetricsRegistry, MetricsSnapshot};
use dra4wfms::prelude::*;
use dra_bench::fuzz;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Drive `def` end to end through the scheduler with the fuzz cast
/// (`designer`, `p0`–`p3`, `TFC`) and a fixed script; return the final
/// document and the metrics snapshot.
fn run_def(
    def: WorkflowDefinition,
    script: &[(&str, &[(&str, &str)])],
    pid: &str,
) -> (DraDocument, MetricsSnapshot) {
    let (creds, dir) = fuzz::cast();
    let network = Arc::new(NetworkSim::lan());
    let metrics = MetricsRegistry::new();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::clone(&network));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let owned: BTreeMap<String, Vec<(String, String)>> = script
        .iter()
        .map(|(a, rs)| {
            (a.to_string(), rs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect())
        })
        .collect();
    let policy = if def.tfc.is_some() {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };
    let initial = DraDocument::new_initial_with_pid(&def, &policy, &creds[0], pid).unwrap();
    let respond = move |r: &ReceivedActivity| owned.get(&r.activity).cloned().unwrap_or_default();
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = def
        .tfc
        .is_some()
        .then(|| TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1_000)));
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(200)
        .metrics(&metrics);
    if let Some(server) = tfc.as_ref() {
        run = run.tfc(server);
    }
    let out = run.run().unwrap();
    let snap = metrics.snapshot();
    check_metric_invariants(&snap).unwrap();
    (out.document.document().clone(), snap)
}

fn cer_keys(doc: &DraDocument) -> Vec<String> {
    doc.cers().unwrap().iter().map(|c| format!("{}", c.key)).collect()
}

/// A `fork` whose short branch announces the OR-join while the long branch
/// still has a queued activation — the join must park, then resume.
fn asymmetric_or_join() -> WorkflowDefinition {
    WorkflowDefinition::builder("or-join", "designer")
        .simple_activity("A", "p0", &["f"])
        .simple_activity("F", "p1", &["f"])
        .simple_activity("L", "p2", &["f"])
        .simple_activity("R1", "p3", &["f"])
        .simple_activity("R2", "p0", &["f"])
        .activity(Activity {
            id: "J".into(),
            participant: "p1".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("A", "F")
        .flow("F", "L")
        .flow("F", "R1")
        .flow("R1", "R2")
        .flow("L", "J")
        .flow("R2", "J")
        .flow_end("J")
        .build()
        .unwrap()
}

const OR_SCRIPT: &[(&str, &[(&str, &str)])] = &[
    ("A", &[("f", "a")]),
    ("F", &[("f", "fork")]),
    ("L", &[("f", "left")]),
    ("R1", &[("f", "r1")]),
    ("R2", &[("f", "r2")]),
    ("J", &[("f", "merged")]),
];

#[test]
fn or_join_parks_then_fires_once_with_both_branches() {
    let (doc, snap) = run_def(asymmetric_or_join(), OR_SCRIPT, "p-or");
    let keys = cer_keys(&doc);
    assert!(keys.contains(&"L#0".into()) && keys.contains(&"R2#0".into()));
    assert_eq!(keys.iter().filter(|k| k.starts_with("J#")).count(), 1, "join fired once: {keys:?}");
    assert!(snap.counter("sched.or_join_waits") >= 1, "the merge never actually deferred");
    assert_eq!(snap.gauge("sched.or_join_parked"), 0, "a parked join survived the drain");
}

#[test]
fn or_join_does_not_wait_for_a_branch_not_taken() {
    // the long branch is conditional and the guard says no: the OR-join
    // must fire on the short branch alone instead of deadlocking
    let def = WorkflowDefinition::builder("or-skip", "designer")
        .simple_activity("A", "p0", &["f", "go"])
        .simple_activity("L", "p1", &["f"])
        .simple_activity("R1", "p2", &["f"])
        .simple_activity("R2", "p3", &["f"])
        .activity(Activity {
            id: "J".into(),
            participant: "p0".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("A", "L")
        .flow_if("A", "R1", Condition::field_equals("A", "go", "yes"))
        .flow("R1", "R2")
        .flow("L", "J")
        .flow("R2", "J")
        .flow_end("J")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] =
        &[("A", &[("f", "a"), ("go", "no")]), ("L", &[("f", "left")]), ("J", &[("f", "merged")])];
    let (doc, snap) = run_def(def, script, "p-or-skip");
    let keys = cer_keys(&doc);
    assert!(keys.contains(&"J#0".into()), "{keys:?}");
    assert!(!keys.iter().any(|k| k.starts_with("R1#") || k.starts_with("R2#")), "{keys:?}");
    assert_eq!(snap.gauge("sched.or_join_parked"), 0);
}

#[test]
fn chained_or_joins_terminate() {
    // two parked merges in sequence: the drain-end resume path must make
    // progress on each without spinning
    let def = WorkflowDefinition::builder("or-chain", "designer")
        .simple_activity("A", "p0", &["f"])
        .simple_activity("L1", "p1", &["f"])
        .simple_activity("M1", "p2", &["f"])
        .simple_activity("M2", "p3", &["f"])
        .activity(Activity {
            id: "J1".into(),
            participant: "p0".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .simple_activity("L2", "p1", &["f"])
        .simple_activity("N1", "p2", &["f"])
        .simple_activity("N2", "p3", &["f"])
        .activity(Activity {
            id: "J2".into(),
            participant: "p1".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("A", "L1")
        .flow("A", "M1")
        .flow("M1", "M2")
        .flow("L1", "J1")
        .flow("M2", "J1")
        .flow("J1", "L2")
        .flow("J1", "N1")
        .flow("N1", "N2")
        .flow("L2", "J2")
        .flow("N2", "J2")
        .flow_end("J2")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] = &[
        ("A", &[("f", "a")]),
        ("L1", &[("f", "l1")]),
        ("M1", &[("f", "m1")]),
        ("M2", &[("f", "m2")]),
        ("J1", &[("f", "j1")]),
        ("L2", &[("f", "l2")]),
        ("N1", &[("f", "n1")]),
        ("N2", &[("f", "n2")]),
        ("J2", &[("f", "j2")]),
    ];
    let (doc, snap) = run_def(def, script, "p-or-chain");
    let keys = cer_keys(&doc);
    assert!(keys.contains(&"J1#0".into()) && keys.contains(&"J2#0".into()), "{keys:?}");
    assert_eq!(snap.gauge("sched.or_join_parked"), 0);
}

#[test]
fn multi_instance_static_produces_k_cers() {
    let def = WorkflowDefinition::builder("mi-static", "designer")
        .simple_activity("A", "p0", &["f"])
        .simple_activity("M", "p1", &["f"])
        .simple_activity("Z", "p2", &["f"])
        .flow("A", "M")
        .flow("M", "Z")
        .multi_static("M", 3)
        .flow_end("Z")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] =
        &[("A", &[("f", "a")]), ("M", &[("f", "m")]), ("Z", &[("f", "z")])];
    let (doc, _) = run_def(def, script, "p-mi-s");
    let keys = cer_keys(&doc);
    for iter in 0..3 {
        assert!(keys.contains(&format!("M#{iter}")), "{keys:?}");
    }
    assert!(!keys.contains(&"M#3".into()), "{keys:?}");
}

#[test]
fn multi_instance_runtime_cardinality_reads_producer_field() {
    let def = WorkflowDefinition::builder("mi-runtime", "designer")
        .simple_activity("A", "p0", &["f", "n"])
        .simple_activity("M", "p1", &["f"])
        .simple_activity("Z", "p2", &["f"])
        .flow("A", "M")
        .flow("M", "Z")
        .multi_runtime("M", "A", "n")
        .flow_end("Z")
        .build()
        .unwrap();
    let script: &[(&str, &[(&str, &str)])] =
        &[("A", &[("f", "a"), ("n", "2")]), ("M", &[("f", "m")]), ("Z", &[("f", "z")])];
    let (doc, _) = run_def(def, script, "p-mi-r");
    let keys = cer_keys(&doc);
    assert!(keys.contains(&"M#0".into()) && keys.contains(&"M#1".into()), "{keys:?}");
    assert!(!keys.contains(&"M#2".into()), "{keys:?}");
}

fn cancel_def(conditional: bool) -> WorkflowDefinition {
    let mut b =
        WorkflowDefinition::builder("cancel", "designer").simple_activity("F", "p0", &["f"]);
    b = if conditional {
        b.simple_activity("T", "p1", &["f", "cond"])
    } else {
        b.simple_activity("T", "p1", &["f"])
    };
    b = b
        .simple_activity("V", "p2", &["f"])
        .activity(Activity {
            id: "J".into(),
            participant: "p3".into(),
            join: JoinKind::Or,
            requests: vec![],
            responses: vec!["f".into()],
        })
        .flow("F", "T")
        .flow("F", "V")
        .flow("T", "J")
        .flow("V", "J");
    b = if conditional {
        b.cancel_on_if("T", Condition::field_equals("T", "cond", "yes"), &["V"])
    } else {
        b.cancel_on("T", &["V"])
    };
    b.flow_end("J").build().unwrap()
}

#[test]
fn cancellation_withdraws_the_queued_victim() {
    // T is announced before V, so V's activation is still queued when the
    // trigger completes — the region must withdraw it before it dispatches
    let script: &[(&str, &[(&str, &str)])] =
        &[("F", &[("f", "fork")]), ("T", &[("f", "trig")]), ("J", &[("f", "after")])];
    let (doc, snap) = run_def(cancel_def(false), script, "p-cancel");
    let keys = cer_keys(&doc);
    assert!(!keys.iter().any(|k| k.starts_with("V#")), "victim executed: {keys:?}");
    assert!(keys.contains(&"J#0".into()), "{keys:?}");
    assert!(snap.counter("sched.cancelled") >= 1);
    assert_eq!(snap.counter("sched.cancelled_dispatches"), 0);
}

#[test]
fn cancellation_guard_false_leaves_the_region_alone() {
    let script: &[(&str, &[(&str, &str)])] = &[
        ("F", &[("f", "fork")]),
        ("T", &[("f", "trig"), ("cond", "no")]),
        ("V", &[("f", "victim")]),
        ("J", &[("f", "after")]),
    ];
    let (doc, snap) = run_def(cancel_def(true), script, "p-cancel-no");
    let keys = cer_keys(&doc);
    assert!(keys.contains(&"V#0".into()), "guarded cancel fired anyway: {keys:?}");
    assert_eq!(snap.counter("sched.cancelled"), 0);
}

#[test]
fn unsound_definition_rejected_at_scheduler_admission() {
    let def = fuzz::canned_deadlock();
    let (creds, dir) = fuzz::cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 1, Arc::clone(&network));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "p-unsound")
            .unwrap();
    let respond = |_: &ReceivedActivity| Vec::new();
    let mut sched = Scheduler::new(&sys);
    let err = sched
        .admit_instance(InstanceRun::new(&sys, &initial).agents(&agents).respond(&respond))
        .unwrap_err();
    match err {
        WfError::Unsound(diag) => {
            assert!(diag.contains("J"), "diagnostic should name the stuck join: {diag}")
        }
        other => panic!("expected WfError::Unsound, got {other}"),
    }
}

#[test]
fn unsound_definition_rejected_at_portal_store() {
    // the legacy runner bypasses `admit_instance`, so the rejection must
    // come from the portal's own store-time gate
    let def = fuzz::canned_deadlock();
    let (creds, dir) = fuzz::cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 1, Arc::clone(&network));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let initial = DraDocument::new_initial_with_pid(
        &def,
        &SecurityPolicy::public(),
        &creds[0],
        "p-unsound-l",
    )
    .unwrap();
    let respond = |r: &ReceivedActivity| vec![("x".to_string(), format!("v-{}", r.activity))];
    let err = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(20)
        .run_legacy()
        .unwrap_err();
    match err {
        WfError::Unsound(_) => {}
        other => panic!("expected WfError::Unsound, got {other}"),
    }
}
