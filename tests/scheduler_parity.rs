//! Scheduler-vs-legacy parity: the event-driven core ([`InstanceRun::run`],
//! a facade over `cloud::sched::Scheduler`) must be byte-for-byte
//! indistinguishable from the frozen per-instance loop
//! ([`InstanceRun::run_legacy`]) — identical pool snapshot hashes and equal
//! `run.*` / `portal.*` metrics — on Fig. 9A (basic) and Fig. 9B (advanced)
//! under a lossless channel, hostile faults, and seeded crash-fault
//! takeover. Only the `sched.*` dispatch accounting may differ: the legacy
//! path never pops the bus.

use dra4wfms::cloud::{
    CloudSystem, CrashPlan, CrashPoint, Delivery, DeliveryPolicy, FaultProfile, InstanceRun,
    NetworkSim,
};
use dra4wfms::obs::MetricsRegistry;
use dra4wfms::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq)]
enum Path {
    Legacy,
    Sched,
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Lossless,
    HostileFaults,
    SeededCrash,
}

fn fig9_def(advanced: bool) -> WorkflowDefinition {
    let b = WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![FieldRef::new("B1", "review1"), FieldRef::new("B2", "review2")],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D");
    if advanced { b.with_tfc("TFC") } else { b }.build().unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("parity-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        other => panic!("unexpected {other}"),
    }
}

/// Drive one fresh deployment end to end through the chosen path and
/// scenario; return the pool snapshot hash, the comparable metric families
/// and the reported step count.
fn run_once(
    path: Path,
    advanced: bool,
    scenario: Scenario,
) -> (String, BTreeMap<String, u64>, usize) {
    let (creds, dir) = cast();
    let def = fig9_def(advanced);
    let pol = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };
    let network = Arc::new(NetworkSim::lan());
    let plan = match scenario {
        // one AEA dies mid-sign on the 3rd trigger; the supervisor takes
        // the hop over after the lease
        Scenario::SeededCrash => CrashPlan::once(CrashPoint::AeaBeforeSign, 3),
        _ => CrashPlan::none(),
    };
    let sys =
        CloudSystem::new(dir.clone(), 3, Arc::clone(&network)).with_crash_plan(Arc::clone(&plan));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone()).with_crash_hook(plan.hook());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(move || 1_000));
    let delivery = match scenario {
        Scenario::HostileFaults => Some(
            Delivery::new(
                Arc::clone(&network),
                FaultProfile::hostile(),
                DeliveryPolicy::default(),
                42,
            )
            .unwrap(),
        ),
        _ => None,
    };
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "parity-run").unwrap();

    let metrics = MetricsRegistry::new();
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .metrics(&metrics);
    if advanced {
        run = run.tfc(&tfc);
    }
    if let Some(d) = &delivery {
        run = run.network(d);
    }
    let out = match path {
        Path::Legacy => run.run_legacy(),
        Path::Sched => run.run(),
    }
    .expect("the run completes on both paths");

    let digest = dra4wfms::crypto::sha256(&sys.snapshot_pool());
    let comparable: BTreeMap<String, u64> = metrics
        .snapshot()
        .counters
        .into_iter()
        .filter(|(k, _)| k.starts_with("run.") || k.starts_with("portal."))
        .collect();
    (dra4wfms::crypto::hex::encode(&digest), comparable, out.steps)
}

fn assert_parity(advanced: bool, scenario: Scenario, label: &str) {
    let (legacy_hash, legacy_metrics, legacy_steps) = run_once(Path::Legacy, advanced, scenario);
    let (sched_hash, sched_metrics, sched_steps) = run_once(Path::Sched, advanced, scenario);
    assert_eq!(legacy_hash, sched_hash, "{label}: pool snapshot sha256 diverged");
    assert_eq!(legacy_metrics, sched_metrics, "{label}: run.*/portal.* metrics diverged");
    assert_eq!(legacy_steps, sched_steps, "{label}: step counts diverged");
    assert_eq!(legacy_steps, 9, "{label}: fig9 takes its loop exactly once");
    assert!(
        legacy_metrics["portal.notifications"] > 0,
        "{label}: notifications were actually published"
    );
}

#[test]
fn fig9a_lossless_parity() {
    assert_parity(false, Scenario::Lossless, "fig9a lossless");
}

#[test]
fn fig9b_lossless_parity() {
    assert_parity(true, Scenario::Lossless, "fig9b lossless");
}

#[test]
fn fig9a_hostile_faults_parity() {
    assert_parity(false, Scenario::HostileFaults, "fig9a hostile");
}

#[test]
fn fig9b_hostile_faults_parity() {
    assert_parity(true, Scenario::HostileFaults, "fig9b hostile");
}

#[test]
fn fig9a_seeded_crash_parity() {
    assert_parity(false, Scenario::SeededCrash, "fig9a crash");
}

#[test]
fn fig9b_seeded_crash_parity() {
    assert_parity(true, Scenario::SeededCrash, "fig9b crash");
}

/// A three-instance fleet driven concurrently by one scheduler stores, for
/// every instance, exactly the document bytes the frozen legacy loop
/// stores when driving the instances one by one — interleaving reorders
/// pool *cell timestamps* (a global monotonic counter), never document
/// content. And the concurrent fleet itself is byte-deterministic: two
/// identical fleets produce identical pool snapshots, timestamps included.
#[test]
fn small_fleet_matches_sequential_legacy_runs() {
    let run_fleet = |concurrent: bool| -> (String, Vec<String>) {
        let (creds, dir) = cast();
        let def = fig9_def(false);
        let network = Arc::new(NetworkSim::lan());
        let sys = CloudSystem::new(dir.clone(), 4, Arc::clone(&network));
        let agents: HashMap<String, Arc<Aea>> = creds
            .iter()
            .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
            .collect();
        let initials: Vec<DraDocument> = (0..3)
            .map(|i| {
                DraDocument::new_initial_with_pid(
                    &def,
                    &SecurityPolicy::public(),
                    &creds[0],
                    &format!("fleet-{i}"),
                )
                .unwrap()
            })
            .collect();
        if concurrent {
            let mut sched = dra4wfms::cloud::Scheduler::new(&sys);
            for initial in &initials {
                sched
                    .admit_instance(
                        InstanceRun::new(&sys, initial)
                            .agents(&agents)
                            .respond(&respond)
                            .max_steps(100),
                    )
                    .unwrap();
            }
            for (pid, result) in sched.run_to_completion() {
                assert_eq!(result.unwrap().steps, 9, "{pid}");
            }
        } else {
            for initial in &initials {
                let out = InstanceRun::new(&sys, initial)
                    .agents(&agents)
                    .respond(&respond)
                    .max_steps(100)
                    .run_legacy()
                    .unwrap();
                assert_eq!(out.steps, 9);
            }
        }
        let pool_hash =
            dra4wfms::crypto::hex::encode(&dra4wfms::crypto::sha256(&sys.snapshot_pool()));
        let mut docs: Vec<String> = Vec::new();
        for i in 0..3 {
            let pid = format!("fleet-{i}");
            for seq in 0.. {
                match sys.retrieve_version(&pid, seq) {
                    Some(xml) => docs.push(xml),
                    None => break,
                }
            }
        }
        (pool_hash, docs)
    };
    let (concurrent_hash, concurrent_docs) = run_fleet(true);
    let (_, sequential_docs) = run_fleet(false);
    assert_eq!(concurrent_docs.len(), 30, "initial + 9 versions per instance");
    assert_eq!(concurrent_docs, sequential_docs, "fleet interleaving changed document bytes");
    let (concurrent_hash_again, _) = run_fleet(true);
    assert_eq!(concurrent_hash, concurrent_hash_again, "concurrent fleet must be deterministic");
}
