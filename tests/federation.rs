//! Multi-cloud federation: graceful degradation proofs.
//!
//! The claims under test, end to end over real Fig. 9A instances:
//!
//! * a **healthy** federated deployment replicates every admission to
//!   every peer cloud and holds exactly the document rows a single-cloud
//!   run holds (byte-identical pool digest);
//! * a **cloud outage** is confirmed after the policy's touch count,
//!   admissions fail over to the surviving cloud, every instance still
//!   completes, and the surviving pool digest equals the healthy baseline;
//! * a **tampered portal** is caught by the serve-side integrity probe,
//!   raises the typed `portal_tampered` alert, is quarantined with zero
//!   admissions afterwards, and the honest bytes are re-served from the
//!   next eligible portal;
//! * a **torn replication** (replica dies between journal append and
//!   commit) is repaired by the replica's own journal replay, and the
//!   journal's torn-tail import machinery applies per cloud;
//! * a proptest: random outage/tamper schedules under a hostile
//!   `FaultProfile` never change the final pool sha256 versus the healthy
//!   single-cloud baseline — degradation costs time, never safety.

use dra4wfms::cloud::{
    alerts_to_jsonl, check_metric_invariants, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
    OutagePlan, Scheduler, TamperPlan, Topology,
};
use dra4wfms::obs::MetricsRegistry;
use dra4wfms::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn fig9_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![FieldRef::new("B1", "review1"), FieldRef::new("B2", "review2")],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("fed-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        other => panic!("unexpected {other}"),
    }
}

fn initials(creds: &[Credentials], ids: std::ops::Range<usize>) -> Vec<DraDocument> {
    let def = fig9_def();
    let pol = SecurityPolicy::public();
    ids.map(|i| {
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], &format!("fed-{i}")).unwrap()
    })
    .collect()
}

/// Drive the given instances through the event-driven scheduler, asserting
/// every one completes in exactly 9 steps (Fig. 9A takes its loop once).
fn drive(
    sys: &CloudSystem,
    creds: &[Credentials],
    dir: &Directory,
    docs: &[DraDocument],
    delivery: Option<&Delivery>,
    monitor: Option<&Arc<HealthMonitor>>,
    metrics: Option<&MetricsRegistry>,
) {
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let mut sched = Scheduler::new(sys);
    for doc in docs {
        let mut run = InstanceRun::new(sys, doc).agents(&agents).respond(&respond).max_steps(100);
        if let Some(d) = delivery {
            run = run.network(d);
        }
        if let Some(m) = monitor {
            run = run.monitor(m);
        }
        if let Some(m) = metrics {
            run = run.metrics(m);
        }
        sched.admit_instance(run).unwrap();
    }
    for (pid, result) in sched.run_to_completion() {
        let out = result.unwrap_or_else(|e| panic!("{pid} failed to complete: {e}"));
        assert_eq!(out.steps, 9, "{pid}");
    }
}

/// The healthy single-cloud baseline digest over `fed-0 .. fed-n`:
/// computed once, compared against by every degraded cell.
fn healthy_digest(n: usize) -> &'static str {
    static TWO: OnceLock<String> = OnceLock::new();
    static THREE: OnceLock<String> = OnceLock::new();
    let cell = match n {
        2 => &TWO,
        3 => &THREE,
        other => panic!("no baseline for {other} instances"),
    };
    cell.get_or_init(|| {
        let (creds, dir) = cast();
        let sys = CloudSystem::new(dir.clone(), 4, Arc::new(NetworkSim::lan()));
        drive(&sys, &creds, &dir, &initials(&creds, 0..n), None, None, None);
        sys.pool_digest()
    })
}

fn two_cloud_topology() -> Topology {
    Topology::new().cloud("east", 2).cloud("west", 2)
}

#[test]
fn healthy_federation_replicates_and_matches_single_cloud() {
    let (creds, dir) = cast();
    let sys =
        CloudSystem::federated(dir.clone(), two_cloud_topology(), Arc::new(NetworkSim::lan()))
            .unwrap();
    let metrics = MetricsRegistry::new();
    drive(&sys, &creds, &dir, &initials(&creds, 0..2), None, None, Some(&metrics));

    assert_eq!(sys.pool_digest(), healthy_digest(2), "replication changed document bytes");
    assert!(sys.replicas_consistent(), "east and west must hold identical doc rows");
    let digests = sys.cloud_digests();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0].1, digests[1].1);

    let ctrl = sys.federation_controller().unwrap();
    let stats = ctrl.stats();
    assert_eq!(stats.replicas_acked, sys.total_stored() as u64, "one peer ack per admission");
    assert_eq!(stats.quarantines + stats.failovers + stats.outages, 0);
    assert_eq!(stats.tampered_serves, 0);
    assert_eq!(stats.active_cloud, 0);

    sys.export_metrics(&metrics);
    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.counter("federation.replicas_acked"), stats.replicas_acked);
    check_metric_invariants(&snapshot).unwrap();

    // per-cloud journals exist and persist independently
    let journals = sys.journal_snapshots();
    assert_eq!(journals.len(), 2);
    assert!(journals.iter().all(|(_, bytes)| !bytes.is_empty()));
}

#[test]
fn cloud_outage_fails_over_and_preserves_the_pool() {
    let (creds, dir) = cast();
    let network = Arc::new(NetworkSim::lan());
    let sys =
        CloudSystem::federated(dir.clone(), two_cloud_topology(), Arc::clone(&network)).unwrap();
    // east (the active cloud) is dead from virtual microsecond 5 — before
    // the first admission ever lands
    sys.federation_controller().unwrap().set_outage(OutagePlan::at(0, 5));
    let delivery =
        Delivery::new(Arc::clone(&network), FaultProfile::lossless(), DeliveryPolicy::default(), 7)
            .unwrap();
    let metrics = MetricsRegistry::new();
    drive(&sys, &creds, &dir, &initials(&creds, 0..2), Some(&delivery), None, Some(&metrics));

    let ctrl = sys.federation_controller().unwrap();
    assert_eq!(ctrl.active_cloud(), 1, "admissions failed over to west");
    assert!(ctrl.cloud_down(0));
    let stats = ctrl.stats();
    assert_eq!(stats.outages, 1);
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.replicas_acked, 0, "no reachable peer to replicate to");

    // the surviving cloud holds exactly the healthy run's documents
    assert_eq!(sys.pool_digest(), healthy_digest(2), "failover changed document bytes");
    assert!(sys.replicas_consistent(), "down clouds are excluded from consistency");

    sys.export_metrics(&metrics);
    check_metric_invariants(&metrics.snapshot()).unwrap();
}

#[test]
fn tampered_portal_is_quarantined_and_the_honest_bytes_reserved() {
    let (creds, dir) = cast();
    let sys =
        CloudSystem::federated(dir.clone(), two_cloud_topology(), Arc::new(NetworkSim::lan()))
            .unwrap();
    drive(&sys, &creds, &dir, &initials(&creds, 0..2), None, None, None);
    let before = sys.pool_digest();

    let ctrl = Arc::clone(sys.federation_controller().unwrap());
    let monitor = HealthMonitor::new(MonitorConfig::default());
    ctrl.set_monitor(&monitor);
    // portal 1 serves corrupted bytes on its very next serve
    ctrl.set_tamper(TamperPlan::once(1, 1));

    let served = sys.retrieve_latest(1, "fed-0").expect("the serve survives the bad portal");
    assert_eq!(
        served,
        sys.retrieve_version("fed-0", 9).unwrap(),
        "the re-served bytes are the honest latest version"
    );

    // the probe caught it: typed alert, quarantine, zero admissions after
    assert!(ctrl.is_quarantined(1));
    let stats = ctrl.stats();
    assert_eq!(stats.tampered_serves, 1);
    assert_eq!(stats.quarantines, 1);
    assert!(ctrl.zero_admissions_after_quarantine());
    let jsonl = alerts_to_jsonl(&monitor.alerts());
    assert!(jsonl.contains("\"portal_tampered\""), "got: {jsonl}");
    assert!(jsonl.contains("\"portal\":1"), "got: {jsonl}");

    // the pool itself was never touched — tamper lives on the serve path
    assert_eq!(sys.pool_digest(), before);
    assert!(sys.replicas_consistent());

    // the quarantined portal takes no further work: new admissions route
    // around it and its admission counter stays frozen
    assert_ne!(sys.route_portal(1), 1);
    drive(&sys, &creds, &dir, &initials(&creds, 2..3), None, None, None);
    assert!(ctrl.zero_admissions_after_quarantine());
    assert_eq!(sys.pool_digest(), healthy_digest(3));
}

#[test]
fn torn_replication_is_repaired_by_replica_journal_replay() {
    let (creds, dir) = cast();
    let def = fig9_def();
    let sys =
        CloudSystem::federated(dir.clone(), two_cloud_topology(), Arc::new(NetworkSim::lan()))
            .unwrap()
            .with_crash_plan(CrashPlan::once(CrashPoint::ReplicaBeforeCommit, 1));
    let doc = DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "t-1")
        .unwrap();
    let wire = doc.to_xml_string();
    let route = Route { targets: vec!["A".into()], ends: false };

    // the replica (west) dies after journalling the admission, before
    // committing it: the primary is durable, the replica is torn
    let err = sys.store_document(0, &wire, &route).unwrap_err();
    assert!(matches!(err, WfError::Crash(_)), "got: {err:?}");
    assert_eq!(sys.retrieve_version("t-1", 0).unwrap(), wire, "primary committed");
    assert!(!sys.replicas_consistent(), "west is missing the admission");

    // the torn replica journal round-trips through the torn-tail import
    // machinery: the full export replays the admission, a cut export drops
    // the torn record instead of failing
    let journals = sys.journal_snapshots();
    let west = &journals.iter().find(|(name, _)| name == "west").unwrap().1;
    let full = dra4wfms::docpool::Journal::import(west).unwrap();
    assert_eq!(full.len(), 1);
    assert_eq!(full.uncommitted(), 1, "the west record never committed");
    let torn = dra4wfms::docpool::Journal::import(&west[..west.len() - 3]).unwrap();
    assert_eq!(torn.len(), 0, "a torn final record is dropped, not fatal");

    // replica restart: its own journal replay completes the admission
    assert_eq!(sys.recover_portals(), 1);
    assert!(sys.replicas_consistent(), "west caught up");
    assert_eq!(sys.journal_replays(), 1);

    // the sender's retry is a clean duplicate on the primary
    let ack = sys.ingest_wire(0, &wire, &route, None).unwrap();
    assert!(ack.duplicate);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random outage/tamper schedules under a hostile fault profile:
    /// every instance completes, quarantined portals take zero admissions
    /// afterwards, and the final pool digest is byte-identical to the
    /// healthy single-cloud baseline — a bad cloud costs time, never
    /// safety.
    #[test]
    fn degraded_runs_never_change_the_pool_digest(
        fault_seed in 0u64..1_000,
        outage_from in 1u64..2_000_000,
        tamper_portal in 0usize..4,
        tamper_nth in 1u64..3,
    ) {
        let (creds, dir) = cast();
        let network = Arc::new(NetworkSim::lan());
        let sys = CloudSystem::federated(
            dir.clone(),
            two_cloud_topology(),
            Arc::clone(&network),
        ).unwrap();
        let ctrl = Arc::clone(sys.federation_controller().unwrap());
        let monitor = HealthMonitor::new(MonitorConfig::default());
        ctrl.set_monitor(&monitor);
        ctrl.set_outage(OutagePlan::at(0, outage_from));
        ctrl.set_tamper(TamperPlan::once(tamper_portal, tamper_nth));
        let delivery = Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            fault_seed,
        ).unwrap();

        drive(&sys, &creds, &dir, &initials(&creds, 0..2), Some(&delivery), Some(&monitor), None);

        // audit pass: serve every instance through every portal, so an
        // armed tamper plan gets its chance to fire mid-sweep
        for pid in ["fed-0", "fed-1"] {
            for portal in 0..4 {
                if let Some(served) = sys.retrieve_latest(portal, pid) {
                    prop_assert_eq!(&served, &sys.retrieve_version(pid, 9).unwrap());
                }
            }
        }

        // second wave after any quarantine: frozen portals stay frozen
        drive(&sys, &creds, &dir, &initials(&creds, 2..3), Some(&delivery), Some(&monitor), None);

        let final_digest = sys.pool_digest();
        prop_assert_eq!(final_digest.as_str(), healthy_digest(3));
        prop_assert!(ctrl.zero_admissions_after_quarantine());
        prop_assert!(sys.replicas_consistent());
        let stats = ctrl.stats();
        prop_assert!(stats.failovers <= stats.quarantines + stats.outages);
    }
}
