//! Integration: parallel signature verification — the same verdicts as the
//! sequential verifier, at every thread count, on genuine and tampered
//! documents and on document batches (the portal bulk path).

use dra4wfms::prelude::*;

fn chain(n: usize) -> (DraDocument, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "pv-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("pv-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    let mut b = WorkflowDefinition::builder("pv", "designer");
    for i in 0..n {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["v"]);
    }
    for i in 0..n - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    let def = b.flow_end(format!("S{}", n - 1)).build().unwrap();
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "pv")
            .unwrap();
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let recv = aea.receive(doc.to_xml_string(), &format!("S{i}")).unwrap();
        doc =
            aea.complete(&recv, &[("v".into(), format!("x{i}"))]).unwrap().document.into_document();
    }
    (doc, dir)
}

#[test]
fn parallel_matches_serial_on_genuine_document() {
    let (doc, dir) = chain(12);
    let serial = Verifier::new(&dir).run(&doc).unwrap().report;
    for threads in [1, 2, 4, 8, 64] {
        let parallel =
            Verifier::new(&dir).batched(false).threads(threads).run(&doc).unwrap().report;
        assert_eq!(parallel, serial, "threads={threads}");
    }
    assert_eq!(serial.signatures_verified, 13);
}

#[test]
fn parallel_detects_tampering() {
    let (doc, dir) = chain(8);
    let tampered = doc.to_xml_string().replace("x3", "FORGED");
    assert_ne!(tampered, doc.to_xml_string());
    let parsed = DraDocument::parse(&tampered).unwrap();
    for threads in [1, 4] {
        assert!(
            Verifier::new(&dir).batched(false).threads(threads).run(&parsed).is_err(),
            "threads={threads}"
        );
    }
}

#[test]
fn batch_reports_per_document_verdicts() {
    let (good, dir) = chain(4);
    let bad = {
        let xml = good.to_xml_string().replace("x1", "EVIL");
        DraDocument::parse(&xml).unwrap()
    };
    let docs = vec![good.clone(), bad, good.clone()];
    for threads in [1, 3, 8] {
        let verdicts = Verifier::new(&dir).batched(false).threads(threads).run_many(&docs);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts[0].is_ok(), "threads={threads}");
        assert!(verdicts[1].is_err(), "threads={threads}");
        assert!(verdicts[2].is_ok(), "threads={threads}");
    }
}

#[test]
fn empty_batch_is_fine() {
    let (_, dir) = chain(2);
    assert!(Verifier::new(&dir).batched(false).threads(4).run_many(&[]).is_empty());
}

#[test]
fn parallel_verify_amended_document() {
    // amendments require the sequential fold; the parallel phase only runs
    // the signature checks — verdicts must still match
    let designer = Credentials::from_seed("designer", "pva-d");
    let alice = Credentials::from_seed("alice", "pva-a");
    let bob = Credentials::from_seed("bob", "pva-b");
    let dir = Directory::from_credentials([&designer, &alice, &bob]);
    let def = WorkflowDefinition::builder("w", "designer")
        .simple_activity("s1", "alice", &["x"])
        .flow_end("s1")
        .build()
        .unwrap();
    let doc = DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &designer, "pva")
        .unwrap();
    let delta = DefinitionDelta {
        add_activities: vec![Activity {
            id: "s2".into(),
            participant: "bob".into(),
            join: JoinKind::Any,
            requests: vec![],
            responses: vec!["y".into()],
        }],
        add_transitions: vec![
            Transition { from: "s1".into(), to: Target::Activity("s2".into()), condition: None },
            Transition { from: "s2".into(), to: Target::End, condition: None },
        ],
        retire_transitions: vec![("s1".into(), Target::End)],
        add_policy_rules: vec![],
    };
    let amended = amend_document(&doc, &designer, &delta).unwrap();
    let aea = Aea::new(alice, dir.clone());
    let recv = aea.receive(amended.to_xml_string(), "s1").unwrap();
    let done = aea.complete(&recv, &[("x".into(), "1".into())]).unwrap();
    assert_eq!(done.route.targets, vec!["s2"], "amended route in force");
    let aea = Aea::new(bob, dir.clone());
    let recv = aea.receive(done.document.to_xml_string(), "s2").unwrap();
    let done = aea.complete(&recv, &[("y".into(), "2".into())]).unwrap();

    let serial = Verifier::new(&dir).run(&done.document).unwrap().report;
    let parallel =
        Verifier::new(&dir).batched(false).threads(4).run(&done.document).unwrap().report;
    assert_eq!(serial, parallel);
    assert_eq!(serial.signatures_verified, 4, "designer + amendment + s1 + s2");
}
