//! Integration: the cloud deployment — concurrent instances through portal
//! servers into the document pool, TO-DO notification, monitoring,
//! MapReduce statistics (claims C5 of DESIGN.md).

use dra4wfms::cloud::{CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn setup() -> (WorkflowDefinition, SecurityPolicy, Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "alice", "bob"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("cp-{n}")))
        .collect();
    let def = WorkflowDefinition::builder("ticket", "designer")
        .simple_activity("open", "alice", &["sev"])
        .simple_activity("close", "bob", &["fix"])
        .flow("open", "close")
        .flow_end("close")
        .build()
        .unwrap();
    let pol = SecurityPolicy::builder().restrict("open", "sev", &["bob"]).build();
    let dir = Directory::from_credentials(&creds);
    (def, pol, creds, dir)
}

fn agents(creds: &[Credentials], dir: &Directory) -> HashMap<String, Arc<Aea>> {
    creds.iter().map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone())))).collect()
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "open" => vec![("sev".into(), "high".into())],
        "close" => vec![("fix".into(), "done".into())],
        _ => vec![],
    }
}

#[test]
fn concurrent_instances_share_the_pool() {
    let (def, pol, creds, dir) = setup();
    let sys = Arc::new(CloudSystem::new(dir.clone(), 4, Arc::new(NetworkSim::lan())));
    let ags = Arc::new(agents(&creds, &dir));
    let designer = creds[0].clone();
    let n = 32;
    crossbeam::thread::scope(|s| {
        for w in 0..4 {
            let sys = Arc::clone(&sys);
            let ags = Arc::clone(&ags);
            let def = def.clone();
            let pol = pol.clone();
            let designer = designer.clone();
            s.spawn(move |_| {
                for i in (w..n).step_by(4) {
                    let initial = DraDocument::new_initial_with_pid(
                        &def,
                        &pol,
                        &designer,
                        &format!("t-{i:03}"),
                    )
                    .unwrap();
                    InstanceRun::new(&sys, &initial)
                        .agents(&ags)
                        .respond(&respond)
                        .max_steps(20)
                        .run()
                        .unwrap();
                }
            });
        }
    })
    .unwrap();

    // every instance completed, each with 3 stored versions
    let stats = sys.statistics_by_status(4);
    assert_eq!(stats["complete"], n);
    for i in 0..n {
        let pid = format!("t-{i:03}");
        let status = sys.process_status(&pid).unwrap().unwrap();
        assert_eq!(status.steps(), 2, "{pid}");
        assert_eq!(sys.pool.scan_prefix(&format!("doc/{pid}/")).len(), 3);
        // the stored final document verifies
        let xml = sys.retrieve_latest(0, &pid).unwrap();
        Verifier::new(&dir).run(&DraDocument::parse(&xml).unwrap()).unwrap();
    }
    let steps = sys.steps_per_workflow(4);
    assert_eq!(steps["ticket"], 2 * n);
}

#[test]
fn todo_lifecycle_across_portal() {
    let (def, pol, creds, dir) = setup();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "todo-1").unwrap();

    // manual Fig. 7 loop: store initial -> alice's TO-DO -> execute -> bob
    sys.store_document(
        0,
        &initial.to_xml_string(),
        &Route { targets: vec!["open".into()], ends: false },
    )
    .unwrap();
    assert_eq!(sys.search_todo("alice").len(), 1);

    let alice = Aea::new(creds[1].clone(), dir.clone());
    let xml = sys.retrieve_latest(0, "todo-1").unwrap();
    let recv = alice.receive(&xml, "open").unwrap();
    let done = alice.complete(&recv, &[("sev".into(), "low".into())]).unwrap();
    sys.store_document(1, &done.document.to_xml_string(), &done.route).unwrap();
    sys.consume_todo("alice", "todo-1", "open");

    assert!(sys.search_todo("alice").is_empty());
    assert_eq!(
        sys.search_todo("bob"),
        vec![dra4wfms::cloud::TodoEntry { process_id: "todo-1".into(), activity: "close".into() }]
    );
}

#[test]
fn pool_survives_region_splits_under_document_load() {
    let (def, pol, creds, dir) = setup();
    let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
    // push enough instances to force region splits (max_region_rows = 1024)
    for i in 0..700 {
        let initial =
            DraDocument::new_initial_with_pid(&def, &pol, &creds[0], &format!("bulk-{i:05}"))
                .unwrap();
        sys.store_document(0, &initial.to_xml_string(), &Route::default()).unwrap();
    }
    let stats = sys.pool.stats();
    assert!(stats.regions > 1, "split under load: {stats:?}");
    assert_eq!(stats.rows, 3 * 700, "doc row + meta row + seen (dedup) row per instance");
    // random access still works post-split
    for i in [0, 350, 699] {
        assert!(sys.retrieve_latest(0, &format!("bulk-{i:05}")).is_some());
    }
}
