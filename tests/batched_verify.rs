//! Property-based integration tests for batch verification: the batched
//! verifier must be *observationally identical* to the sequential one on
//! every document — same accept/reject verdict, and on rejection the same
//! culprit signer and error variant (the batch equation only says "some
//! signature is bad"; the per-signature fallback pinpoints which, exactly
//! as the sequential pass would).

use dra4wfms::prelude::*;
use proptest::prelude::*;

/// Deterministic cast shared by the generated workflows.
fn cast(n: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "bv-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("bv-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

/// Execute a linear `len`-step workflow with the given response values.
fn run_linear(len: usize, values: &[String]) -> (DraDocument, Directory) {
    let (creds, dir) = cast(len);
    let mut b = WorkflowDefinition::builder("bv", "designer");
    for i in 0..len {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["f"]);
    }
    for i in 0..len - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    let def = b.flow_end(format!("S{}", len - 1)).build().unwrap();
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "bv-pid")
            .unwrap();
    for i in 0..len {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let recv = aea.receive(doc.to_xml_string(), &format!("S{i}")).unwrap();
        doc = aea
            .complete(&recv, &[("f".into(), values[i].clone())])
            .unwrap()
            .document
            .into_document();
    }
    (doc, dir)
}

fn arb_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{1,16}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched ≡ sequential on genuine random workflows: same verdict, same
    /// report, and the batched pass never falls back.
    #[test]
    fn batched_accepts_what_sequential_accepts(
        len in 2usize..6,
        values in proptest::collection::vec(arb_value(), 6),
    ) {
        let (doc, dir) = run_linear(len, &values[..len]);
        let sequential = Verifier::new(&dir).batched(false).run(&doc).unwrap().report;
        let batched = Verifier::new(&dir).batched(true).run(&doc).unwrap().report;
        prop_assert_eq!(sequential, batched);
    }

    /// Exactly one tampered CER: the batch equation fails, the fallback
    /// pinpoints the same signer with the same error variant and message as
    /// the sequential pass.
    #[test]
    fn batched_pinpoints_the_same_culprit(
        len in 2usize..6,
        culprit in 0usize..6,
        values in proptest::collection::vec("[a-z]{4,12}", 6),
    ) {
        let culprit = culprit.min(len - 1);
        let (doc, dir) = run_linear(len, &values[..len]);
        let xml = doc.to_xml_string().replace(&values[culprit], "EVIL");
        prop_assume!(xml != doc.to_xml_string());
        let tampered = DraDocument::parse(&xml).unwrap();

        let seq_err = Verifier::new(&dir).batched(false).run(&tampered).unwrap_err();
        let bat_err = Verifier::new(&dir).batched(true).run(&tampered).unwrap_err();
        prop_assert!(matches!(seq_err, WfError::Verify(_)), "sequential: {seq_err}");
        prop_assert!(matches!(bat_err, WfError::Verify(_)), "batched: {bat_err}");
        // identical culprit and variant ⇒ identical rendered error
        prop_assert_eq!(seq_err.to_string(), bat_err.to_string());
        // and the message names the culprit CER
        prop_assert!(
            seq_err.to_string().contains(&format!("S{culprit}")),
            "error '{seq_err}' should name S{culprit}"
        );
    }

    /// Incremental + batched: same verdict and same fresh mark as
    /// incremental + sequential, at every mark staleness.
    #[test]
    fn batched_incremental_matches_sequential_incremental(
        len in 2usize..6,
        mark_at in 0usize..6,
        values in proptest::collection::vec(arb_value(), 6),
    ) {
        let mark_at = mark_at.min(len);
        let (doc, dir) = run_linear(len, &values[..len]);
        let report = Verifier::new(&dir).run(&doc).unwrap().report;
        let mut mark = trust_mark_for(&doc, &report, 0).unwrap();
        mark.verified_cers = mark_at;
        mark.prefix_digest = dra4wfms::core::sealed::prefix_digest(&doc, mark_at).unwrap();

        let seq = Verifier::new(&dir).batched(false).with_mark(&mark).run(&doc).unwrap();
        let bat = Verifier::new(&dir).batched(true).with_mark(&mark).run(&doc).unwrap();
        prop_assert_eq!(seq.report, bat.report);
        prop_assert_eq!(seq.reused_cers, bat.reused_cers);
        prop_assert_eq!(seq.fell_back, bat.fell_back);
        prop_assert_eq!(seq.mark.unwrap(), bat.mark.unwrap());
    }
}

/// Empty batch: a mark covering the entire document leaves zero signature
/// checks to schedule — the batched path must accept without touching the
/// batch equation.
#[test]
fn empty_task_batch_verifies() {
    let values: Vec<String> = (0..3).map(|i| format!("v{i}")).collect();
    let (doc, dir) = run_linear(3, &values);
    let report = Verifier::new(&dir).run(&doc).unwrap().report;
    let mark = trust_mark_for(&doc, &report, 0).unwrap();
    let outcome = Verifier::new(&dir).batched(true).with_mark(&mark).run(&doc).unwrap();
    assert_eq!(outcome.report.signatures_verified, 0);
    assert_eq!(outcome.reused_cers, 3);
}

/// Singleton batch: an initial document plans exactly one signature check
/// (the designer's); batched and sequential must agree on it.
#[test]
fn singleton_task_batch_verifies() {
    let (creds, dir) = cast(1);
    let def = WorkflowDefinition::builder("bv1", "designer")
        .simple_activity("S0", "p0", &["f"])
        .flow_end("S0")
        .build()
        .unwrap();
    let doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "bv1-pid")
            .unwrap();
    let b = Verifier::new(&dir).batched(true).run(&doc).unwrap().report;
    let s = Verifier::new(&dir).batched(false).run(&doc).unwrap().report;
    assert_eq!(b, s);
    assert_eq!(b.signatures_verified, 1);

    // tampered singleton: same rejection either way
    let tampered = doc.to_xml_string().replace("S0", "S0x");
    if let Ok(parsed) = DraDocument::parse(&tampered) {
        assert!(Verifier::new(&dir).batched(true).run(&parsed).is_err());
        assert!(Verifier::new(&dir).batched(false).run(&parsed).is_err());
    }
}
