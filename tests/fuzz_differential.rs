//! Small-corpus smoke of the differential fuzzing harness. The full
//! 64-seed campaign runs in CI through the `claim_fuzz` bin (see
//! EXPERIMENTS.md C14); this keeps a handful of seeds in the ordinary
//! test suite so a regression in the harness — or in anything it
//! differential-checks — fails fast and locally.

use dra_bench::fuzz;

#[test]
fn differential_corpus_smoke() {
    for seed in 0..6 {
        let r = fuzz::fuzz_seed(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.forgeries_caught, r.forgeries_tried, "seed {seed}: a forgery slipped through");
        assert!(r.unsound_rejected, "seed {seed}: the unsound twin was admitted");
        assert!(r.hops_basic > 0 && r.hops_basic == r.hops_advanced, "seed {seed}");
        assert!(r.soundness_states > 0, "seed {seed}: the soundness proof explored nothing");
    }
}

#[test]
fn seed_reports_are_reproducible() {
    let a = fuzz::fuzz_seed(7).unwrap();
    let b = fuzz::fuzz_seed(7).unwrap();
    assert_eq!(a.outcome_sha256, b.outcome_sha256);
    assert_eq!(a.hops_basic, b.hops_basic);
    assert_eq!(a.soundness_states, b.soundness_states);
    assert_eq!(a.or_join_waits, b.or_join_waits);
    assert_eq!(a.cancelled, b.cancelled);
}
