//! Integration: the paper's experimental workflows (Fig. 9A/9B) end to end,
//! checking the structural properties behind Tables 1 and 2.

use dra4wfms::cloud::{CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::core::monitor::ProcessStatus;
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fig9_def(advanced: bool) -> WorkflowDefinition {
    let b = WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![FieldRef::new("B1", "review1"), FieldRef::new("B2", "review2")],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D");
    if advanced { b.with_tfc("TFC") } else { b }.build().unwrap()
}

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("fig9-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn agents(creds: &[Credentials], dir: &Directory) -> HashMap<String, Arc<Aea>> {
    creds.iter().map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone())))).collect()
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        other => panic!("unexpected {other}"),
    }
}

/// Encrypt the attachment to the reviewers and C (element-wise encryption,
/// as in the paper's experiments).
fn policy(def: &WorkflowDefinition, advanced: bool) -> SecurityPolicy {
    let p = SecurityPolicy::builder()
        .restrict("A", "attachment", &["p_b1", "p_b2", "p_c"])
        .restrict("C", "decision", &["p_a", "p_b1", "p_b2", "p_c", "p_d"])
        .build();
    if advanced {
        p.with_tfc_access("TFC", def)
    } else {
        p
    }
}

#[test]
fn fig9a_basic_model_structure_matches_table1() {
    let (creds, dir) = cast();
    let def = fig9_def(false);
    let pol = policy(&def, false);
    // C routes on its own decision: C can read it (it is in the audience).
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "t1").unwrap();
    let initial_size = initial.size_bytes();

    let ags = agents(&creds, &dir);
    let out = InstanceRun::new(&sys, &initial)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9, "A,B1,B2,C ×2 + D (loop taken once), as in Table 1");

    // Σ grows monotonically with the number of CERs (Table 1's key shape).
    let mut sizes = vec![initial_size];
    for seq in 1.. {
        match sys.retrieve_version("t1", seq) {
            Some(xml) => sizes.push(xml.len()),
            None => break,
        }
    }
    assert_eq!(sizes.len(), 10, "initial + 9 stored versions");
    // per-branch parallel docs may tie; overall trend strictly grows at joins
    assert!(sizes.windows(2).all(|w| w[1] >= w[0] || w[1] as f64 > w[0] as f64 * 0.8));
    assert!(*sizes.last().unwrap() > 4 * initial_size / 2, "final ≫ initial");

    // number of signatures to verify grows linearly with CERs
    let report = Verifier::new(&dir).run(&out.document).unwrap().report;
    assert_eq!(report.cers.len(), 9);
    assert_eq!(report.signatures_verified, 10);
}

#[test]
fn fig9b_advanced_model_structure_matches_table2() {
    let (creds, dir) = cast();
    let def = fig9_def(true);
    let pol = policy(&def, true);
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let ticks = std::sync::atomic::AtomicU64::new(0);
    let tfc = TfcServer::with_clock(
        tfc_creds,
        dir.clone(),
        Arc::new(move || 1000 + ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
    );
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "t2").unwrap();
    let ags = agents(&creds, &dir);
    let out = InstanceRun::new(&sys, &initial)
        .agents(&ags)
        .tfc(&tfc)
        .respond(&respond)
        .max_steps(100)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);

    // every CER has: TfcSealed + Result + Timestamp + participant & TFC sigs
    for cer in out.document.cers().unwrap() {
        assert!(cer.tfc_sealed().is_some(), "{} sealed", cer.key);
        assert!(cer.result().is_some(), "{} re-encrypted", cer.key);
        assert!(cer.timestamp_millis().is_some(), "{} timestamped", cer.key);
        assert_eq!(cer.signatures().len(), 2, "{} doubly signed", cer.key);
    }
    // timestamps are monotone in execution order of the TFC's clock
    let status = ProcessStatus::from_document(&out.document).unwrap();
    let times: Vec<u64> = status.executed.iter().filter_map(|e| e.timestamp).collect();
    assert_eq!(times.len(), 9);

    // designer + 9 participant + 9 TFC signatures
    let report = Verifier::new(&dir).run(&out.document).unwrap().report;
    assert_eq!(report.signatures_verified, 19);

    // the advanced-model document is larger than the basic one (extra sealed
    // blobs, timestamps and attestations — Table 2 vs Table 1 sizes)
    let (creds_b, dir_b) = cast();
    let def_b = fig9_def(false);
    let sys_b = CloudSystem::new(dir_b.clone(), 2, Arc::new(NetworkSim::lan()));
    let initial_b =
        DraDocument::new_initial_with_pid(&def_b, &policy(&def_b, false), &creds_b[0], "t2b")
            .unwrap();
    let ags_b = agents(&creds_b, &dir_b);
    let out_b = InstanceRun::new(&sys_b, &initial_b)
        .agents(&ags_b)
        .respond(&respond)
        .max_steps(100)
        .run()
        .unwrap();
    assert!(
        out.document.size_bytes() > out_b.document.size_bytes(),
        "advanced {} > basic {}",
        out.document.size_bytes(),
        out_b.document.size_bytes()
    );
}

#[test]
fn loop_iterations_are_distinct_cers() {
    let (creds, dir) = cast();
    let def = fig9_def(false);
    let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
    let initial =
        DraDocument::new_initial_with_pid(&def, &policy(&def, false), &creds[0], "t3").unwrap();
    let ags = agents(&creds, &dir);
    let out = InstanceRun::new(&sys, &initial)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .run()
        .unwrap();
    // X''_Ai(k) notation: the same activity appears once per iteration
    let keys: Vec<String> =
        out.document.cers().unwrap().iter().map(|c| c.key.to_string()).collect();
    assert!(keys.contains(&"A#0".to_string()));
    assert!(keys.contains(&"A#1".to_string()));
    assert!(keys.contains(&"C#0".to_string()));
    assert!(keys.contains(&"C#1".to_string()));
    assert!(keys.contains(&"D#0".to_string()));
    // and the second C signs the second branch results
    let c1 = out.document.find_cer(&CerKey::new("C", 1)).unwrap().unwrap();
    assert!(c1.preds.contains(&PredRef::Cer(CerKey::new("B1", 1))));
    assert!(c1.preds.contains(&PredRef::Cer(CerKey::new("B2", 1))));
}

#[test]
fn and_join_requires_both_branches() {
    let (creds, dir) = cast();
    let def = fig9_def(false);
    let initial =
        DraDocument::new_initial_with_pid(&def, &policy(&def, false), &creds[0], "t4").unwrap();
    let ags = agents(&creds, &dir);
    // A executes, then only B1 — C must refuse
    let recv = ags["p_a"].receive(initial.to_xml_string(), "A").unwrap();
    let a_done = ags["p_a"].complete(&recv, &[("attachment".into(), "f".into())]).unwrap();
    let recv = ags["p_b1"].receive(a_done.document.to_xml_string(), "B1").unwrap();
    let b1_done = ags["p_b1"].complete(&recv, &[("review1".into(), "ok".into())]).unwrap();
    let err = ags["p_c"].receive(b1_done.document.to_xml_string(), "C").unwrap_err();
    assert!(matches!(err, WfError::Flow(m) if m.contains("AND-join")));

    // with B2's branch merged in, C proceeds
    let recv = ags["p_b2"].receive(a_done.document.to_xml_string(), "B2").unwrap();
    let b2_done = ags["p_b2"].complete(&recv, &[("review2".into(), "ok".into())]).unwrap();
    let recv = ags["p_c"]
        .receive_merged(
            &[&b1_done.document.to_xml_string(), &b2_done.document.to_xml_string()],
            "C",
        )
        .unwrap();
    assert_eq!(recv.preds.len(), 2, "C signs both branches");
    let c_done = ags["p_c"].complete(&recv, &[("decision".into(), "accept".into())]).unwrap();
    assert_eq!(c_done.route.targets, vec!["D"]);
}
