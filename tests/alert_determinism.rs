//! Integration: alert streams are byte-deterministic (DESIGN §11), and
//! every `ReconcileError` variant renders a stable, self-explaining
//! message.
//!
//! Alerts are stamped in virtual time off the deterministic span stream,
//! so the same seed must yield byte-identical alert JSONL run after run —
//! the same contract traces have, pinned the same way: a golden under
//! `tests/golden/`, regenerated only intentionally with:
//!
//! ```sh
//! REGEN_GOLDEN=1 cargo test --test alert_determinism
//! ```

use dra4wfms::cloud::{
    alerts_to_jsonl, tracer_for, CloudSystem, CrashPlan, CrashPoint, HealthMonitor, InstanceRun,
    MonitorConfig, NetworkSim,
};
use dra4wfms::core::document::CerKey;
use dra4wfms::core::reconcile::ReconcileError;
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

fn fig9a_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

/// The golden workload: one Fig. 9A instance with a single injected crash
/// (stuck-hop → early takeover) and an unmeetable 1 µs SLO, so the alert
/// stream exercises `stuck_instance` *and* `slo_breach` deterministically.
fn monitored_alerts() -> String {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("golden-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let plan = CrashPlan::once(CrashPoint::AeaBeforeSign, 3);
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
        .with_crash_plan(Arc::clone(&plan))
        .with_tracer(tracer.clone());
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone())
                .with_crash_hook(plan.hook())
                .with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let initial = DraDocument::new_initial_with_pid(
        &fig9a_def(),
        &SecurityPolicy::public(),
        &creds[0],
        "golden-run",
    )
    .unwrap();
    let respond = |received: &ReceivedActivity| match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".to_string(),
            if received.iter == 0 { "insufficient" } else { "accept" }.to_string(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    };
    let out = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .tracer(tracer.clone())
        .monitor(&monitor)
        .slo_us(1)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);
    alerts_to_jsonl(&monitor.alerts())
}

fn check_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} (REGEN_GOLDEN=1 to create): {e}"));
    assert_eq!(
        rendered, golden,
        "{name} diverged from its golden — alert bytes must stay deterministic; \
         regenerate with REGEN_GOLDEN=1 only after an intentional format change"
    );
}

#[test]
fn same_seed_yields_byte_identical_alert_jsonl() {
    let first = monitored_alerts();
    let second = monitored_alerts();
    assert_eq!(first, second);
    assert!(first.contains("\"kind\":\"stuck_instance\""), "the injected stall is in the stream");
    assert!(first.contains("\"kind\":\"slo_breach\""), "the unmeetable SLO is in the stream");
}

#[test]
fn alert_jsonl_matches_golden() {
    check_golden("fig9a.alerts.jsonl", &monitored_alerts());
}

/// `Display` snapshot for every `ReconcileError` variant: these strings
/// reach operators verbatim (bench summaries, CI logs), so changes must be
/// deliberate.
#[test]
fn reconcile_error_display_snapshots() {
    let cases: Vec<(ReconcileError, &str)> = vec![
        (ReconcileError::Document("bad xml".into()), "document unreadable: bad xml"),
        (
            ReconcileError::MissingFromTrace { position: 2, expected: CerKey::new("B1", 0) },
            "cascade position 2: document proves B1#0 but the trace has no successful hop for it",
        ),
        (
            ReconcileError::UnprovenExecution { position: 4, activity: "C".into(), iter: 1 },
            "hop position 4: trace claims C#1 succeeded but the document proves no such execution",
        ),
        (
            ReconcileError::OrderMismatch {
                position: 1,
                document: CerKey::new("A", 0),
                trace: CerKey::new("B2", 0),
            },
            "cascade position 1: document proves A#0 but the trace observed B2#0 there",
        ),
        (
            ReconcileError::ParticipantMismatch {
                key: CerKey::new("C", 0),
                document: "p_c".into(),
                trace: "mallory".into(),
            },
            "C#0: document proves participant 'p_c' but the trace attributes the hop to 'mallory'",
        ),
        (
            ReconcileError::TimestampUnwitnessed { key: CerKey::new("A", 1), timestamp: 250 },
            "A#1: document embeds TFC timestamp 250ms but no tfc:timestamp span witnessed it",
        ),
        (
            ReconcileError::TimestampMismatch {
                key: CerKey::new("D", 0),
                document: 300,
                trace: 301,
            },
            "D#0: document embeds TFC timestamp 300ms but the trace witnessed 301ms",
        ),
        (
            ReconcileError::TimestampOutsideHop {
                key: CerKey::new("B2", 0),
                witness_us: (10, 20),
                hop_us: (30, 40),
            },
            "B2#0: tfc:timestamp witness [10..20]µs lies outside its successful hop [30..40]µs",
        ),
        (
            ReconcileError::CancelledExecution {
                position: 3,
                key: CerKey::new("V", 0),
                trigger: "T".into(),
            },
            "cascade position 3: V#0 executed although completion of 'T' had cancelled its region",
        ),
        (
            ReconcileError::JoinMissingBranch {
                position: 2,
                join: CerKey::new("J", 0),
                branch: "R2".into(),
            },
            "cascade position 2: join J#0 fired without incoming branch 'R2'",
        ),
    ];
    for (err, expected) in cases {
        assert_eq!(err.to_string(), expected);
    }
}
