//! Property-based integration tests for the observability layer: randomly
//! generated workflows driven through a hostile fault-injecting channel
//! with a seeded crash schedule must still produce traces the document
//! reconciles, and end-of-run metrics that satisfy the cross-layer
//! accounting invariants (DESIGN §10).

use dra4wfms::cloud::{
    check_metric_invariants, tracer_for, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, InstanceRun, NetworkSim,
};
use dra4wfms::obs::MetricsRegistry;
use dra4wfms::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A linear workflow of `len` activities, one participant each.
fn linear_def(len: usize) -> WorkflowDefinition {
    let mut b = WorkflowDefinition::builder("gen-obs", "designer");
    for i in 0..len {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["f"]);
    }
    for i in 0..len - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    b.flow_end(format!("S{}", len - 1)).build().unwrap()
}

fn cast(len: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "obs-designer")];
    for i in 0..len {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("obs-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any generated run that survives the hostile channel + one injected
    /// crash reconciles against its own document, and its metrics satisfy
    /// the accounting invariants.
    #[test]
    fn hostile_runs_reconcile_and_account(
        len in 3usize..7,
        seed in 0u64..1_000,
        crash_nth in 1u64..6,
        values in proptest::collection::vec("[ -~]{0,16}", 7),
    ) {
        let (creds, dir) = cast(len);
        let def = linear_def(len);
        let network = Arc::new(NetworkSim::lan());
        let tracer = tracer_for(&network);
        let metrics = MetricsRegistry::new();
        let plan = CrashPlan::once(CrashPoint::AeaBeforeSign, 1 + crash_nth % len as u64);
        let sys = CloudSystem::new(dir.clone(), 2, Arc::clone(&network))
            .with_crash_plan(Arc::clone(&plan))
            .with_tracer(tracer.clone());
        let delivery = Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            seed,
        )
        .unwrap()
        .with_tracer(tracer.clone());
        let agents: HashMap<String, Arc<Aea>> = creds
            .iter()
            .map(|c| {
                let aea = Aea::new(c.clone(), dir.clone())
                    .with_crash_hook(plan.hook())
                    .with_tracer(tracer.clone());
                (c.name.clone(), Arc::new(aea))
            })
            .collect();
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public(),
            &creds[0],
            "obs-gen",
        )
        .unwrap();
        let respond = move |received: &ReceivedActivity| {
            let i: usize = received.activity[1..].parse().unwrap();
            vec![("f".to_string(), values[i].clone())]
        };
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents)
            .respond(&respond)
            .max_steps(100)
            .network(&delivery)
            .tracer(tracer.clone())
            .metrics(&metrics)
            .run();
        // the hostile profile stays inside the retry budget for every seed
        // exercised here; a genuine delivery exhaustion would surface as Err
        let out = out.unwrap();
        prop_assert_eq!(out.steps, len);
        prop_assert_eq!(plan.crashes_injected(), 1, "the scheduled crash fired");

        // the trace reconciles against the signed document even though the
        // run crossed drops, duplicates, corruption and one crash takeover
        let events = tracer.events();
        let report = reconcile(&events, out.document.document())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.hops_matched, len);
        prop_assert!(report.crashed_attempts >= 1);

        // cross-layer accounting invariants on the unified snapshot
        let snapshot = metrics.snapshot();
        check_metric_invariants(&snapshot).map_err(TestCaseError::fail)?;
        prop_assert!(
            snapshot.counter("delivery.delivered") + snapshot.counter("delivery.faults.dropped")
                >= snapshot.counter("delivery.sends"),
            "delivered >= sent - dropped"
        );
        prop_assert!(
            snapshot.counter("delivery.journal_replays")
                <= snapshot.counter("delivery.crashes_injected"),
            "journal replays only repair injected crashes"
        );
        prop_assert_eq!(snapshot.counter("run.steps"), len as u64);
        prop_assert_eq!(
            snapshot.counter("delivery.crashes_injected"),
            plan.crashes_injected()
        );
    }
}
