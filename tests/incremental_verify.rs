//! Integration: the incremental verification pipeline.
//!
//! A [`TrustMark`] pins an already-verified prefix of a document by the
//! SHA-256 of its canonical bytes. These tests pin the core contract:
//!
//! * with a mark covering j CERs and k CERs appended since, incremental
//!   verification performs **exactly k** signature checks;
//! * any tamper inside the marked prefix is still detected — the digest
//!   mismatch forces the full pass, which fails loudly;
//! * unusable marks (wrong process, too many CERs) fall back to the full
//!   pass without changing the verdict;
//! * acceptance is **equivalent** to the full verifier: a property test
//!   over random runs, stale marks and random tampering asserts both
//!   verifiers accept/reject exactly the same documents.

use dra4wfms::prelude::*;
use proptest::prelude::*;

/// Deterministic cast for linear chains.
fn cast(n: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "iv-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("iv-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn linear_def(n: usize) -> WorkflowDefinition {
    let mut b = WorkflowDefinition::builder("inc", "designer");
    for i in 0..n {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["f"]);
    }
    for i in 0..n - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    b.flow_end(format!("S{}", n - 1)).build().unwrap()
}

/// Execute an `n`-step public-policy chain, returning the document snapshot
/// after every step (`snapshots[j]` has j CERs) plus the directory.
fn run_chain(n: usize, values: &[String]) -> (Vec<DraDocument>, Directory) {
    let (creds, dir) = cast(n);
    let def = linear_def(n);
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "iv-pid")
            .unwrap();
    let mut snapshots = vec![doc.clone()];
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let recv = aea.receive(doc, &format!("S{i}")).unwrap();
        doc = aea
            .complete(&recv, &[("f".into(), values[i].clone())])
            .unwrap()
            .document
            .into_document();
        snapshots.push(doc.clone());
    }
    (snapshots, dir)
}

/// A mark a hop would legitimately hold after fully verifying `doc`.
fn mark_for(doc: &DraDocument, dir: &Directory) -> TrustMark {
    let report = Verifier::new(dir).run(doc).unwrap().report;
    trust_mark_for(doc, &report, 0).unwrap()
}

#[test]
fn k_new_cers_cost_exactly_k_signature_checks() {
    let n = 7;
    let values: Vec<String> = (0..n).map(|i| format!("value-{i}")).collect();
    let (snapshots, dir) = run_chain(n, &values);
    let final_doc = snapshots.last().unwrap();

    // the full pass costs designer + n participant checks
    let full = Verifier::new(&dir).run(final_doc).unwrap().report;
    assert_eq!(full.signatures_verified, 1 + n);

    for (j, snapshot) in snapshots.iter().enumerate() {
        let mark = mark_for(snapshot, &dir);
        let outcome = Verifier::new(&dir).with_mark(&mark).run(final_doc).unwrap();
        assert!(!outcome.fell_back, "valid mark at j={j} must be used");
        assert_eq!(outcome.reused_cers, j);
        // the acceptance criterion: exactly k = n - j checks, no designer
        // re-check (the prefix digest pins the definition too)
        assert_eq!(
            outcome.report.signatures_verified,
            n - j,
            "mark covering {j} CERs over a {n}-CER document"
        );
        // the fresh mark pins the whole document
        let fresh = outcome.mark.expect("incremental mode issues a mark");
        assert_eq!(fresh.verified_cers, n);
        assert_eq!(
            fresh.prefix_digest,
            dra4wfms::core::sealed::prefix_digest(final_doc, n).unwrap()
        );
    }
}

#[test]
fn no_mark_is_a_plain_full_verification() {
    let values: Vec<String> = (0..3).map(|i| format!("v{i}")).collect();
    let (snapshots, dir) = run_chain(3, &values);
    let outcome = Verifier::new(&dir).with_mark(None).run(snapshots.last().unwrap()).unwrap();
    assert!(!outcome.fell_back, "no mark offered, so nothing to fall back from");
    assert_eq!(outcome.reused_cers, 0);
    assert_eq!(outcome.report.signatures_verified, 4, "designer + 3 CERs");
}

#[test]
fn tampered_prefix_detected_despite_stale_mark() {
    let n = 5;
    let values: Vec<String> = (0..n).map(|i| format!("value-{i}")).collect();
    let (snapshots, dir) = run_chain(n, &values);
    // the mark was honestly issued over the clean 3-CER prefix
    let mark = mark_for(&snapshots[3], &dir);

    // Mallory alters a result *inside* the marked prefix
    let tampered_xml = snapshots[n].to_xml_string().replace("value-1", "evil-1");
    assert_ne!(tampered_xml, snapshots[n].to_xml_string());
    let tampered = DraDocument::parse(&tampered_xml).unwrap();

    // the digest no longer matches, so the full pass runs — and fails
    let err = Verifier::new(&dir).with_mark(&mark).run(&tampered).unwrap_err();
    assert!(matches!(err, WfError::Verify(_)), "tamper detected: {err}");

    // the same attack against a sealed, trust-marked hand-off: the receiving
    // AEA must reject it even though the seal claims a verified prefix
    let sealed = SealedDocument::with_trust(tampered, mark);
    let aea = Aea::new(Credentials::from_seed("p0", "iv-p0"), dir.clone());
    assert!(aea.receive(sealed, "S0").is_err());
}

#[test]
fn unusable_marks_fall_back_to_full_verification() {
    let n = 4;
    let values: Vec<String> = (0..n).map(|i| format!("w{i}")).collect();
    let (snapshots, dir) = run_chain(n, &values);
    let final_doc = snapshots.last().unwrap();
    let good = mark_for(&snapshots[2], &dir);

    // wrong process id
    let mut wrong_pid = good.clone();
    wrong_pid.process_id = "someone-else".into();
    let outcome = Verifier::new(&dir).with_mark(&wrong_pid).run(final_doc).unwrap();
    assert!(outcome.fell_back);
    assert_eq!(outcome.report.signatures_verified, 1 + n, "full pass ran");

    // claims more CERs than the document has
    let mut too_many = good.clone();
    too_many.verified_cers = n + 3;
    let outcome = Verifier::new(&dir).with_mark(&too_many).run(final_doc).unwrap();
    assert!(outcome.fell_back);

    // digest of a different run
    let mut bad_digest = good;
    bad_digest.prefix_digest[0] ^= 0xff;
    let outcome = Verifier::new(&dir).with_mark(&bad_digest).run(final_doc).unwrap();
    assert!(outcome.fell_back);
    assert_eq!(outcome.reused_cers, 0);
}

#[test]
fn advanced_model_hop_rechecks_participant_and_attestation_only() {
    // Two activities through a TFC: at each hand-off the finalized CER is
    // the only unverified part, costing exactly 2 checks (participant
    // signature + TFC attestation).
    let designer = Credentials::from_seed("designer", "adv-d");
    let peter = Credentials::from_seed("peter", "adv-p");
    let amy = Credentials::from_seed("amy", "adv-a");
    let tfc_creds = Credentials::from_seed("TFC", "adv-t");
    let def = WorkflowDefinition::builder("adv", "designer")
        .simple_activity("A", "peter", &["x"])
        .simple_activity("B", "amy", &["y"])
        .flow("A", "B")
        .flow_end("B")
        .with_tfc("TFC")
        .build()
        .unwrap();
    let policy = SecurityPolicy::public().with_tfc_access("TFC", &def);
    let dir = Directory::from_credentials([&designer, &peter, &amy, &tfc_creds]);
    let tfc = TfcServer::with_clock(tfc_creds, dir.clone(), std::sync::Arc::new(|| 42));

    let initial = DraDocument::new_initial_with_pid(&def, &policy, &designer, "adv-pid").unwrap();
    let aea_peter = Aea::new(peter, dir.clone());
    let recv = aea_peter.receive(SealedDocument::new(initial), "A").unwrap();
    assert_eq!(recv.report.signatures_verified, 1, "designer only");

    let inter = aea_peter.complete_via_tfc(&recv, &[("x".into(), "1".into())]).unwrap();
    // the TFC re-checks exactly the intermediate CER's participant signature
    let processed = tfc.receive(inter.document).unwrap();
    assert_eq!(processed.report.signatures_verified, 1);
    let finalized = tfc.finalize(&processed).unwrap();

    // next hop: the finalized CER costs participant + attestation, nothing
    // else — the mark stops just short of the CER the TFC mutated
    let aea_amy = Aea::new(amy, dir.clone());
    let recv = aea_amy.receive(finalized.document, "B").unwrap();
    assert_eq!(recv.report.signatures_verified, 2, "participant + TFC attestation");
    assert_eq!(recv.reused_cers, 0, "the one existing CER was finalized in place");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Equivalence: on random linear runs — with a mark of random staleness
    /// and an optional tamper at a random step — the incremental verifier
    /// accepts/rejects exactly the documents the full verifier does, and
    /// reports the same CER list when both accept.
    #[test]
    fn prop_incremental_equivalent_to_full(
        len in 2usize..6,
        mark_at in 0usize..6,
        tamper_at in 0usize..6,
        tamper in any::<bool>(),
    ) {
        let mark_at = mark_at.min(len);
        let tamper_at = tamper_at.min(len - 1);
        let values: Vec<String> = (0..len).map(|i| format!("value-{i}")).collect();
        let (snapshots, dir) = run_chain(len, &values);
        let mark = mark_for(&snapshots[mark_at], &dir);

        let doc = if tamper {
            // alter step `tamper_at`'s recorded result — possibly inside the
            // marked prefix (stale-mark attack), possibly after it
            let xml = snapshots[len]
                .to_xml_string()
                .replace(&format!("value-{tamper_at}"), "evil");
            DraDocument::parse(&xml).unwrap()
        } else {
            snapshots[len].clone()
        };

        let full = Verifier::new(&dir).run(&doc);
        let inc = Verifier::new(&dir).with_mark(&mark).run(&doc);
        prop_assert_eq!(full.is_ok(), inc.is_ok(), "verdicts must agree");
        if let (Ok(f), Ok(i)) = (full, inc) {
            prop_assert_eq!(f.report.process_id, i.report.process_id);
            prop_assert_eq!(f.report.cers, i.report.cers);
            prop_assert_eq!(f.report.ends_with_intermediate, i.report.ends_with_intermediate);
            prop_assert!(!tamper, "tampered documents must not verify");
        }
    }
}
