//! Integration: trace exporters are byte-deterministic (DESIGN §10).
//!
//! Spans are stamped in virtual time and documents sign deterministically,
//! so a fixed workload must export byte-identical JSONL and Chrome-trace
//! files on every run, on every machine. The goldens under `tests/golden/`
//! pin the exact bytes; regenerate them after an intentional format or
//! instrumentation change with:
//!
//! ```sh
//! REGEN_GOLDEN=1 cargo test --test exporter_determinism
//! ```

use dra4wfms::cloud::{tracer_for, CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::obs::{events_to_chrome, events_to_jsonl, TraceEvent};
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

fn fig9a_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

/// The canonical golden workload: one instrumented Fig. 9A instance on the
/// direct (lossless) path, everything seeded.
fn golden_trace() -> Vec<TraceEvent> {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("golden-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network)).with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone()).with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let initial = DraDocument::new_initial_with_pid(
        &fig9a_def(),
        &SecurityPolicy::public(),
        &creds[0],
        "golden-run",
    )
    .unwrap();
    let respond = |received: &ReceivedActivity| match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".to_string(),
            if received.iter == 0 { "insufficient" } else { "accept" }.to_string(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    };
    let out = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);
    tracer.events()
}

fn check_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} (REGEN_GOLDEN=1 to create): {e}"));
    assert_eq!(
        rendered, golden,
        "{name} diverged from its golden — exporter bytes must stay deterministic; \
         regenerate with REGEN_GOLDEN=1 only after an intentional format change"
    );
}

#[test]
fn repeated_runs_export_identical_bytes() {
    let first = golden_trace();
    let second = golden_trace();
    assert_eq!(events_to_jsonl(&first), events_to_jsonl(&second));
    assert_eq!(events_to_chrome(&first), events_to_chrome(&second));
}

#[test]
fn jsonl_export_matches_golden() {
    check_golden("fig9a.trace.jsonl", &events_to_jsonl(&golden_trace()));
}

#[test]
fn chrome_export_matches_golden() {
    check_golden("fig9a.chrome.json", &events_to_chrome(&golden_trace()));
}

#[test]
fn exports_parse_back_structurally() {
    let events = golden_trace();
    let jsonl = events_to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len(), "one JSON object per event");
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"seq\":") && line.ends_with('}'));
    }
    let chrome = events_to_chrome(&events);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert_eq!(chrome.matches("\"ph\":\"X\"").count(), events.len());
}
