//! Integration: dynamic amendments interact correctly with the full cloud
//! stack — the runner, the TFC, the portals, monitoring and MapReduce
//! statistics.

use dra4wfms::cloud::{CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "alice", "bob", "carol", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("acr-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn base_def(advanced: bool) -> WorkflowDefinition {
    let b = WorkflowDefinition::builder("amendable", "designer")
        .simple_activity("s1", "alice", &["x"])
        .simple_activity("s2", "bob", &["y"])
        .flow("s1", "s2")
        .flow_end("s2");
    if advanced { b.with_tfc("TFC") } else { b }.build().unwrap()
}

fn extension() -> DefinitionDelta {
    DefinitionDelta {
        add_activities: vec![Activity {
            id: "extra".into(),
            participant: "carol".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("s1", "x")],
            responses: vec!["z".into()],
        }],
        add_transitions: vec![
            Transition { from: "s2".into(), to: Target::Activity("extra".into()), condition: None },
            Transition { from: "extra".into(), to: Target::End, condition: None },
        ],
        retire_transitions: vec![("s2".into(), Target::End)],
        add_policy_rules: vec![],
    }
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "s1" => vec![("x".into(), "1".into())],
        "s2" => vec![("y".into(), "2".into())],
        "extra" => vec![("z".into(), "3".into())],
        other => panic!("unexpected {other}"),
    }
}

fn agents(creds: &[Credentials], dir: &Directory) -> HashMap<String, Arc<Aea>> {
    creds.iter().map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone())))).collect()
}

#[test]
fn pre_amended_document_runs_through_the_cloud_basic() {
    let (creds, dir) = cast();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let def = base_def(false);
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "acr-1")
            .unwrap();
    // amendment lands before anything executes
    let amended = amend_document(&initial, &creds[0], &extension()).unwrap();
    let ags = agents(&creds, &dir);
    let out = InstanceRun::new(&sys, &amended)
        .agents(&ags)
        .respond(&respond)
        .max_steps(20)
        .run()
        .unwrap();
    assert_eq!(out.steps, 3, "s1, s2, extra");
    let keys: Vec<String> =
        out.document.cers().unwrap().iter().map(|c| c.key.to_string()).collect();
    assert_eq!(keys, vec!["__amend#0", "s1#0", "s2#0", "extra#0"]);
    Verifier::new(&dir).run(&out.document).unwrap();
    // the post-amendment executions all sign over the amendment
    for cer in out.document.cers().unwrap().iter().skip(1) {
        let scope = nonrepudiation_scope(&out.document, &PredRef::Cer(cer.key.clone())).unwrap();
        assert!(
            scope.contains(&PredRef::Cer(CerKey::new("__amend", 0))),
            "{} covers the amendment",
            cer.key
        );
    }
}

#[test]
fn pre_amended_document_runs_through_the_cloud_advanced() {
    let (creds, dir) = cast();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let def = base_def(true);
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tick = std::sync::atomic::AtomicU64::new(0);
    let tfc = TfcServer::with_clock(
        tfc_creds,
        dir.clone(),
        Arc::new(move || 500 + 10 * tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
    );
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "acr-2")
            .unwrap();
    let amended = amend_document(&initial, &creds[0], &extension()).unwrap();
    let ags = agents(&creds, &dir);
    let out = InstanceRun::new(&sys, &amended)
        .agents(&ags)
        .tfc(&tfc)
        .respond(&respond)
        .max_steps(20)
        .run()
        .unwrap();
    assert_eq!(out.steps, 3);
    // designer + amendment + 3 participants + 3 TFC attestations
    let report = Verifier::new(&dir).run(&out.document).unwrap().report;
    assert_eq!(report.signatures_verified, 8);

    // monitoring statistics over the pool see the timestamp gaps
    let stats = sys.activity_latency_stats(2);
    assert!(stats.contains_key("s2"));
    assert!(stats.contains_key("extra"));
    let (count, mean) = stats["s2"];
    assert_eq!(count, 1);
    assert!(mean >= 10.0, "fixed clock advances 10ms per TFC call: {mean}");
}

#[test]
fn tampered_amendment_rejected_by_portal() {
    let (creds, dir) = cast();
    let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
    let def = base_def(false);
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "acr-3")
            .unwrap();
    let amended = amend_document(&initial, &creds[0], &extension()).unwrap();
    let forged = amended.to_xml_string().replace("participant=\"carol\"", "participant=\"bob\"");
    assert_ne!(forged, amended.to_xml_string());
    assert!(sys.store_document(0, &forged, &Route::default()).is_err());
    assert_eq!(sys.total_stored(), 0);
}
