//! Integration: the online `HealthMonitor` detects every injected
//! pathology — stuck hop, retry storm, crash loop, SLO breach — and stays
//! silent on the lossless no-crash baseline (DESIGN §11).
//!
//! Alerts are advisory; the acceptance bar here is detection: 100% of the
//! injected scenarios raise their typed alert, and a clean run raises
//! nothing (the false-alarm half of the contract, also enforced fleet-wide
//! by `check_metric_invariants`).

use dra4wfms::cloud::monitor::AlertKind;
use dra4wfms::cloud::{
    check_metric_invariants, tracer_for, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
    SupervisorPolicy,
};
use dra4wfms::obs::MetricsRegistry;
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fig9a_def() -> WorkflowDefinition {
    WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .simple_activity("B1", "p_b1", &["review1"])
        .simple_activity("B2", "p_b2", &["review2"])
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .build()
        .unwrap()
}

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct Scenario {
    creds: Vec<Credentials>,
    dir: Directory,
    network: Arc<NetworkSim>,
    plan: Arc<CrashPlan>,
}

fn scenario(crash_at: Option<u64>) -> Scenario {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("health-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let network = Arc::new(NetworkSim::lan());
    let plan = match crash_at {
        Some(n) => CrashPlan::once(CrashPoint::AeaBeforeSign, n),
        None => CrashPlan::none(),
    };
    Scenario { creds, dir, network, plan }
}

fn agents(s: &Scenario, tracer: &dra4wfms::obs::Tracer) -> HashMap<String, Arc<Aea>> {
    s.creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), s.dir.clone())
                .with_crash_hook(s.plan.hook())
                .with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect()
}

fn initial(s: &Scenario, pid: &str) -> DraDocument {
    DraDocument::new_initial_with_pid(&fig9a_def(), &SecurityPolicy::public(), &s.creds[0], pid)
        .unwrap()
}

#[test]
fn stuck_hop_is_detected_and_taken_over_early() {
    // one injected crash; the monitor's progress deadline (15 ms) is
    // shorter than the supervisor lease (20 ms): the supervisor must act
    // on the StuckInstance observation and save virtual time
    let s = scenario(Some(3));
    let tracer = tracer_for(&s.network);
    let sys = CloudSystem::new(s.dir.clone(), 3, Arc::clone(&s.network))
        .with_crash_plan(Arc::clone(&s.plan))
        .with_tracer(tracer.clone());
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let metrics = MetricsRegistry::new();
    let doc = initial(&s, "stuck-run");
    let ags = agents(&s, &tracer);
    let t0 = s.network.virtual_time_us();
    let out = InstanceRun::new(&sys, &doc)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .tracer(tracer.clone())
        .metrics(&metrics)
        .monitor(&monitor)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9, "the run completes despite the crash");

    let alerts = monitor.alerts();
    let stuck: Vec<_> =
        alerts.iter().filter(|a| matches!(a.kind, AlertKind::StuckInstance { .. })).collect();
    assert_eq!(stuck.len(), 1, "exactly the injected stall is reported: {alerts:?}");
    assert_eq!(stuck[0].process_id, "stuck-run");

    // observation beat the lease: the takeover waited out only the
    // progress deadline, not the full lease
    let waited = s.network.virtual_time_us() - t0;
    let lease = SupervisorPolicy::default().lease_us;
    assert!(waited < lease, "advanced {waited} µs, a full lease is {lease} µs");

    let snap = metrics.snapshot();
    assert_eq!(snap.counter("run.early_takeovers"), 1);
    assert_eq!(snap.counter("run.takeovers"), 1);
    assert_eq!(snap.counter("alerts.stuck"), 1);
    check_metric_invariants(&snap).unwrap();
}

#[test]
fn retry_storm_is_detected_on_a_hostile_channel() {
    let s = scenario(None);
    let tracer = tracer_for(&s.network);
    let sys =
        CloudSystem::new(s.dir.clone(), 3, Arc::clone(&s.network)).with_tracer(tracer.clone());
    // storm threshold 2: any delivery that needed a retry counts, so a
    // hostile channel is guaranteed to trip it
    let policy = MonitorConfig { retry_storm_attempts: 2, ..MonitorConfig::default() };
    let monitor = HealthMonitor::new(policy);
    let metrics = MetricsRegistry::new();
    let delivery = Delivery::new(
        Arc::clone(&s.network),
        FaultProfile::hostile(),
        DeliveryPolicy::default(),
        7,
    )
    .unwrap()
    .with_tracer(tracer.clone());
    let doc = initial(&s, "storm-run");
    let ags = agents(&s, &tracer);
    let out = InstanceRun::new(&sys, &doc)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .network(&delivery)
        .tracer(tracer.clone())
        .metrics(&metrics)
        .monitor(&monitor)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);
    let stats = out.delivery.unwrap();
    assert!(stats.retries > 0, "the hostile channel must actually force retries");

    let alerts = monitor.alerts();
    let storms: Vec<_> =
        alerts.iter().filter(|a| matches!(a.kind, AlertKind::RetryStorm { .. })).collect();
    assert!(!storms.is_empty(), "retried deliveries must surface as storms: {alerts:?}");
    for a in &storms {
        let AlertKind::RetryStorm { attempts, threshold, .. } = &a.kind else { unreachable!() };
        assert!(attempts >= threshold);
    }
    check_metric_invariants(&metrics.snapshot()).unwrap();
}

#[test]
fn crash_loop_is_detected_when_takeovers_hit_the_budget() {
    // a budget of one: the single injected crash *is* the loop — the
    // monitor must flag the instance the moment takeovers exhaust it
    let s = scenario(Some(5));
    let tracer = tracer_for(&s.network);
    let sys = CloudSystem::new(s.dir.clone(), 3, Arc::clone(&s.network))
        .with_crash_plan(Arc::clone(&s.plan))
        .with_tracer(tracer.clone());
    let policy = MonitorConfig { crash_loop_takeovers: 1, ..MonitorConfig::default() };
    let monitor = HealthMonitor::new(policy);
    let metrics = MetricsRegistry::new();
    let doc = initial(&s, "loop-run");
    let ags = agents(&s, &tracer);
    let out = InstanceRun::new(&sys, &doc)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .tracer(tracer.clone())
        .metrics(&metrics)
        .monitor(&monitor)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);

    let alerts = monitor.alerts();
    let loops: Vec<_> =
        alerts.iter().filter(|a| matches!(a.kind, AlertKind::CrashLoop { .. })).collect();
    assert_eq!(loops.len(), 1, "the exhausted budget fires exactly once: {alerts:?}");
    assert_eq!(loops[0].kind, AlertKind::CrashLoop { crashes: 1, budget: 1 });
    check_metric_invariants(&metrics.snapshot()).unwrap();
}

#[test]
fn slo_breach_fires_only_when_the_budget_is_blown() {
    for (slo_us, expect_breach) in [(1u64, true), (u64::MAX, false)] {
        let s = scenario(None);
        let tracer = tracer_for(&s.network);
        let sys =
            CloudSystem::new(s.dir.clone(), 3, Arc::clone(&s.network)).with_tracer(tracer.clone());
        let monitor = HealthMonitor::new(MonitorConfig::default());
        let doc = initial(&s, "slo-run");
        let ags = agents(&s, &tracer);
        InstanceRun::new(&sys, &doc)
            .agents(&ags)
            .respond(&respond)
            .max_steps(100)
            .tracer(tracer.clone())
            .monitor(&monitor)
            .slo_us(slo_us)
            .run()
            .unwrap();
        let breaches = monitor
            .alerts()
            .iter()
            .filter(|a| matches!(a.kind, AlertKind::SloBreach { .. }))
            .count();
        assert_eq!(breaches == 1, expect_breach, "slo {slo_us} µs");
    }
}

#[test]
fn lossless_no_crash_baseline_raises_zero_alerts() {
    let s = scenario(None);
    let tracer = tracer_for(&s.network);
    let sys =
        CloudSystem::new(s.dir.clone(), 3, Arc::clone(&s.network)).with_tracer(tracer.clone());
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let metrics = MetricsRegistry::new();
    let delivery = Delivery::lossless(Arc::clone(&s.network)).with_tracer(tracer.clone());
    let doc = initial(&s, "baseline-run");
    let ags = agents(&s, &tracer);
    let out = InstanceRun::new(&sys, &doc)
        .agents(&ags)
        .respond(&respond)
        .max_steps(100)
        .network(&delivery)
        .tracer(tracer.clone())
        .metrics(&metrics)
        .monitor(&monitor)
        .run()
        .unwrap();
    assert_eq!(out.steps, 9);
    assert_eq!(monitor.alerts(), vec![], "a healthy run must be silent");
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("alerts.total"), 0);
    check_metric_invariants(&snap).unwrap();
}
