//! The `dra` command-line tool — see [`dra4wfms::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dra4wfms::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
