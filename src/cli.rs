//! The `dra` command-line interface: key management, process initiation,
//! activity execution, verification, monitoring and nonrepudiation queries
//! over files on disk.
//!
//! Everything is plain files so that cross-enterprise parties can exchange
//! documents over any channel (the whole point of document routing):
//!
//! ```text
//! dra keygen alice --keys keys/
//! dra init --workflow order.dsl --policy order.policy --designer designer \
//!          --keys keys/ --out order-0.xml
//! dra execute --doc order-0.xml --activity submit --as alice \
//!          --respond amount=120 --keys keys/ --out order-1.xml
//! dra verify --doc order-1.xml --keys keys/
//! dra status --doc order-1.xml
//! dra scope --doc order-1.xml --cer submit#0
//! dra dot --workflow order.dsl
//! ```
//!
//! The logic lives in library functions (tested in `tests/cli.rs`); the
//! binary `src/bin/dra.rs` is a thin wrapper.

use crate::core::dsl::parse_workflow;
use crate::core::prelude::*;
use dra_crypto::hex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// CLI failure: message for the user.
pub type CliError = String;

fn err(msg: impl Into<String>) -> CliError {
    msg.into()
}

/// Parse `--flag value` style options plus positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, CliError> {
        let mut positional = Vec::new();
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| err(format!("--{name} requires a value")))?;
                flags.entry(name.to_string()).or_default().push(value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn one(&self, name: &str) -> Result<&str, CliError> {
        match self.flags.get(name).map(Vec::as_slice) {
            Some([v]) => Ok(v),
            Some(_) => Err(err(format!("--{name} given more than once"))),
            None => Err(err(format!("missing required --{name}"))),
        }
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.first()).map(String::as_str)
    }

    fn many(&self, name: &str) -> Vec<&str> {
        self.flags.get(name).map(|v| v.iter().map(String::as_str).collect()).unwrap_or_default()
    }
}

// -- key store ---------------------------------------------------------------

fn secret_path(keys: &Path, name: &str) -> PathBuf {
    keys.join(format!("{name}.secret"))
}

fn public_path(keys: &Path, name: &str) -> PathBuf {
    keys.join(format!("{name}.public"))
}

/// Write a fresh keypair for `name` into the key directory.
pub fn keygen(keys: &Path, name: &str) -> Result<(), CliError> {
    std::fs::create_dir_all(keys).map_err(|e| err(format!("creating {keys:?}: {e}")))?;
    let creds = Credentials::generate(name);
    let id = creds.identity();
    let secret = format!(
        "sign-seed {}\nenc-secret {}\n",
        hex::encode(creds.sign.secret.seed()),
        hex::encode(creds.enc.as_bytes())
    );
    let public = format!("sign {}\nenc {}\n", hex::encode(&id.sign.0), hex::encode(&id.enc.0));
    std::fs::write(secret_path(keys, name), secret).map_err(|e| err(e.to_string()))?;
    std::fs::write(public_path(keys, name), public).map_err(|e| err(e.to_string()))?;
    Ok(())
}

/// Load one actor's credentials from the key directory.
pub fn load_credentials(keys: &Path, name: &str) -> Result<Credentials, CliError> {
    let text = std::fs::read_to_string(secret_path(keys, name))
        .map_err(|e| err(format!("no secret key for '{name}': {e}")))?;
    let mut sign_seed = None;
    let mut enc_secret = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("sign-seed ") {
            sign_seed = hex::decode_array::<32>(v.trim());
        } else if let Some(v) = line.strip_prefix("enc-secret ") {
            enc_secret = hex::decode_array::<32>(v.trim());
        }
    }
    let sign_seed = sign_seed.ok_or_else(|| err(format!("bad secret file for '{name}'")))?;
    let enc_secret = enc_secret.ok_or_else(|| err(format!("bad secret file for '{name}'")))?;
    Ok(Credentials {
        name: name.to_string(),
        sign: dra_crypto::ed25519::Keypair::from_seed(sign_seed),
        enc: dra_crypto::x25519::X25519Secret::from_bytes(enc_secret),
    })
}

/// Build the directory from every `.public` file in the key directory.
pub fn load_directory(keys: &Path) -> Result<Directory, CliError> {
    let mut dir = Directory::new();
    let entries = std::fs::read_dir(keys).map_err(|e| err(format!("reading {keys:?}: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| err(e.to_string()))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("public") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| err("bad key file name"))?
            .to_string();
        let text = std::fs::read_to_string(&path).map_err(|e| err(e.to_string()))?;
        let mut sign = None;
        let mut enc = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("sign ") {
                sign = hex::decode_array::<32>(v.trim());
            } else if let Some(v) = line.strip_prefix("enc ") {
                enc = hex::decode_array::<32>(v.trim());
            }
        }
        let sign = sign.ok_or_else(|| err(format!("bad public file {path:?}")))?;
        let enc = enc.ok_or_else(|| err(format!("bad public file {path:?}")))?;
        dir.register(Identity {
            name,
            sign: dra_crypto::ed25519::PublicKey(sign),
            enc: dra_crypto::x25519::X25519PublicKey(enc),
        });
    }
    if dir.is_empty() {
        return Err(err(format!("no .public key files found in {keys:?}")));
    }
    Ok(dir)
}

// -- policy file -------------------------------------------------------------

/// Parse a policy file: one `restrict ACTIVITY.FIELD to a, b, c` per line
/// (blank lines and `#` comments ignored; unruled fields are public).
pub fn parse_policy_file(text: &str) -> Result<SecurityPolicy, CliError> {
    let mut builder = SecurityPolicy::builder();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("restrict ")
            .ok_or_else(|| err(format!("policy line {}: expected 'restrict …'", i + 1)))?;
        let (field_ref, readers) = rest
            .split_once(" to ")
            .ok_or_else(|| err(format!("policy line {}: expected '… to a, b'", i + 1)))?;
        let (activity, field) = field_ref
            .trim()
            .split_once('.')
            .ok_or_else(|| err(format!("policy line {}: expected ACTIVITY.FIELD", i + 1)))?;
        let names: Vec<&str> =
            readers.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        if names.is_empty() {
            return Err(err(format!("policy line {}: empty reader list", i + 1)));
        }
        builder = builder.restrict(activity.trim(), field.trim(), &names);
    }
    Ok(builder.build())
}

// -- commands ----------------------------------------------------------------

fn cmd_keygen(opts: &Opts) -> Result<String, CliError> {
    let name =
        opts.positional.first().ok_or_else(|| err("usage: dra keygen <name> --keys <dir>"))?;
    let keys = PathBuf::from(opts.opt("keys").unwrap_or("keys"));
    keygen(&keys, name)?;
    Ok(format!("generated keys for '{name}' in {}\n", keys.display()))
}

fn cmd_init(opts: &Opts) -> Result<String, CliError> {
    let wf_path = opts.one("workflow")?;
    let designer_name = opts.one("designer")?;
    let out = opts.one("out")?;
    let keys = PathBuf::from(opts.opt("keys").unwrap_or("keys"));

    let dsl = std::fs::read_to_string(wf_path).map_err(|e| err(format!("{wf_path}: {e}")))?;
    let def = parse_workflow(&dsl).map_err(|e| err(e.to_string()))?;
    let policy = match opts.opt("policy") {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| err(format!("{p}: {e}")))?;
            parse_policy_file(&text)?
        }
        None => SecurityPolicy::public(),
    };
    let designer = load_credentials(&keys, designer_name)?;
    let doc = DraDocument::new_initial(&def, &policy, &designer).map_err(|e| err(e.to_string()))?;
    std::fs::write(out, doc.to_xml_string()).map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "initial document for process {} written to {out} ({} bytes)\n",
        doc.process_id().map_err(|e| err(e.to_string()))?,
        doc.size_bytes()
    ))
}

fn cmd_execute(opts: &Opts) -> Result<String, CliError> {
    let activity = opts.one("activity")?;
    let who = opts.one("as")?;
    let out = opts.one("out")?;
    let keys = PathBuf::from(opts.opt("keys").unwrap_or("keys"));
    let docs = opts.many("doc");
    if docs.is_empty() {
        return Err(err("missing required --doc (repeat for AND-join branches)"));
    }

    let creds = load_credentials(&keys, who)?;
    let directory = load_directory(&keys)?;
    let aea = Aea::new(creds, directory);

    let xmls: Vec<String> = docs
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| err(format!("{p}: {e}"))))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = xmls.iter().map(String::as_str).collect();
    let received = if refs.len() == 1 {
        aea.receive(refs[0], activity)
    } else {
        aea.receive_merged(&refs, activity)
    }
    .map_err(|e| err(e.to_string()))?;

    let mut output = String::new();
    writeln!(
        output,
        "opened {activity}#{} ({} signatures verified)",
        received.iter, received.report.signatures_verified
    )
    .ok();
    for (f, v) in &received.visible {
        writeln!(output, "  visible: {}.{} = {v}", f.activity, f.field).ok();
    }
    for f in &received.hidden {
        writeln!(output, "  hidden:  {}.{}", f.activity, f.field).ok();
    }

    let responses: Vec<(String, String)> = opts
        .many("respond")
        .iter()
        .map(|r| {
            r.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| err(format!("--respond must be field=value, got '{r}'")))
        })
        .collect::<Result<_, _>>()?;

    if received.def.tfc.is_some() {
        // advanced model: seal the result to the TFC and write the
        // intermediate document, to be processed with `dra tfc`
        let inter = aea.complete_via_tfc(&received, &responses).map_err(|e| err(e.to_string()))?;
        std::fs::write(out, inter.document.to_xml_string()).map_err(|e| err(e.to_string()))?;
        writeln!(
            output,
            "intermediate document (sealed to the TFC) written to {out} ({} bytes);              process it with `dra tfc`",
            inter.document.size_bytes()
        )
        .ok();
        return Ok(output);
    }

    let done = aea.complete(&received, &responses).map_err(|e| err(e.to_string()))?;
    std::fs::write(out, done.document.to_xml_string()).map_err(|e| err(e.to_string()))?;
    if done.route.is_final() {
        writeln!(output, "process complete; final document written to {out}").ok();
    } else {
        writeln!(
            output,
            "routed to {:?}; document written to {out} ({} bytes)",
            done.route.targets,
            done.document.size_bytes()
        )
        .ok();
    }
    Ok(output)
}

fn cmd_tfc(opts: &Opts) -> Result<String, CliError> {
    let doc_path = opts.one("doc")?;
    let who = opts.one("as")?;
    let out = opts.one("out")?;
    let keys = PathBuf::from(opts.opt("keys").unwrap_or("keys"));

    let creds = load_credentials(&keys, who)?;
    let directory = load_directory(&keys)?;
    let server = TfcServer::new(creds, directory);
    let xml = std::fs::read_to_string(doc_path).map_err(|e| err(format!("{doc_path}: {e}")))?;
    let processed = server.process(&xml).map_err(|e| err(e.to_string()))?;
    std::fs::write(out, processed.document.to_xml_string()).map_err(|e| err(e.to_string()))?;
    let mut output = format!(
        "TFC finalized {} at t={}ms; document written to {out} ({} bytes)\n",
        processed.key,
        processed.timestamp,
        processed.document.size_bytes()
    );
    if processed.route.is_final() {
        output.push_str("process complete\n");
    } else {
        writeln!(output, "route to {:?}", processed.route.targets).ok();
    }
    Ok(output)
}

fn cmd_verify(opts: &Opts) -> Result<String, CliError> {
    let doc_path = opts.one("doc")?;
    let keys = PathBuf::from(opts.opt("keys").unwrap_or("keys"));
    let xml = std::fs::read_to_string(doc_path).map_err(|e| err(format!("{doc_path}: {e}")))?;
    let doc = DraDocument::parse(&xml).map_err(|e| err(e.to_string()))?;
    let directory = load_directory(&keys)?;
    match Verifier::new(&directory).run(&doc).map(|o| o.report) {
        Ok(report) => Ok(format!(
            "OK: process {}, {} CERs, {} signatures verified{}\n",
            report.process_id,
            report.cers.len(),
            report.signatures_verified,
            if report.ends_with_intermediate { " (awaiting TFC)" } else { "" }
        )),
        Err(e) => Err(err(format!("VERIFICATION FAILED: {e}"))),
    }
}

fn cmd_status(opts: &Opts) -> Result<String, CliError> {
    let doc_path = opts.one("doc")?;
    let xml = std::fs::read_to_string(doc_path).map_err(|e| err(format!("{doc_path}: {e}")))?;
    let doc = DraDocument::parse(&xml).map_err(|e| err(e.to_string()))?;
    let status =
        crate::core::monitor::ProcessStatus::from_document(&doc).map_err(|e| err(e.to_string()))?;
    Ok(status.audit_trail())
}

fn cmd_scope(opts: &Opts) -> Result<String, CliError> {
    let doc_path = opts.one("doc")?;
    let cer = opts.one("cer")?;
    let xml = std::fs::read_to_string(doc_path).map_err(|e| err(format!("{doc_path}: {e}")))?;
    let doc = DraDocument::parse(&xml).map_err(|e| err(e.to_string()))?;
    let key = CerKey::parse(cer).ok_or_else(|| err(format!("bad CER id '{cer}' (want A#0)")))?;
    let scope = nonrepudiation_scope(&doc, &PredRef::Cer(key)).map_err(|e| err(e.to_string()))?;
    let mut out = format!("nonrepudiation scope of {cer} ({} nodes):\n", scope.len());
    for node in scope {
        writeln!(out, "  {node}").ok();
    }
    Ok(out)
}

fn cmd_dot(opts: &Opts) -> Result<String, CliError> {
    if let Some(wf) = opts.opt("workflow") {
        let dsl = std::fs::read_to_string(wf).map_err(|e| err(format!("{wf}: {e}")))?;
        let def = parse_workflow(&dsl).map_err(|e| err(e.to_string()))?;
        return Ok(def.to_dot());
    }
    if let Some(doc_path) = opts.opt("doc") {
        let xml = std::fs::read_to_string(doc_path).map_err(|e| err(format!("{doc_path}: {e}")))?;
        let doc = DraDocument::parse(&xml).map_err(|e| err(e.to_string()))?;
        let (def, _) =
            crate::core::amendment::effective_definition(&doc).map_err(|e| err(e.to_string()))?;
        return Ok(def.to_dot());
    }
    Err(err("dot requires --workflow <dsl-file> or --doc <xml-file>"))
}

const USAGE: &str = "dra — engine-less nonrepudiatable workflow management (DRA4WfMS)

commands:
  keygen <name> --keys <dir>                       generate a keypair
  init --workflow <dsl> [--policy <file>] --designer <name> --keys <dir> --out <xml>
  execute --doc <xml> [--doc <xml>…] --activity <id> --as <name>
          [--respond field=value…] --keys <dir> --out <xml>
  tfc --doc <intermediate-xml> --as <tfc-name> --keys <dir> --out <xml>
  verify --doc <xml> --keys <dir>                  verify every signature
  status --doc <xml>                               audit trail
  scope --doc <xml> --cer <A#0>                    nonrepudiation scope
  dot [--workflow <dsl> | --doc <xml>]             Graphviz export
";

/// Entry point shared by the binary and the tests: run one command, return
/// its stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(USAGE.to_string());
    };
    let opts = Opts::parse(&args[1..])?;
    match command.as_str() {
        "keygen" => cmd_keygen(&opts),
        "init" => cmd_init(&opts),
        "execute" => cmd_execute(&opts),
        "tfc" => cmd_tfc(&opts),
        "verify" => cmd_verify(&opts),
        "status" => cmd_status(&opts),
        "scope" => cmd_scope(&opts),
        "dot" => cmd_dot(&opts),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}
