//! # dra4wfms — Nonrepudiatable & Scalable Cross-Enterprise WfMS in the Cloud
//!
//! Umbrella crate for the Rust reproduction of *"A Framework for
//! Nonrepudiatable and Scalable Cross-Enterprise Workflow Management Systems
//! in the Cloud"* (Hwang, Hsiao, Kao, Lin — IEEE IPDPSW 2012).
//!
//! The system is an **engine-less, document-routing WfMS**: the workflow
//! process instance travels inside a self-protecting XML document secured by
//! element-wise encryption and a cascade of digital signatures, so
//! authentication, confidentiality, integrity and nonrepudiation hold even
//! when the cloud provider itself is untrusted.
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`] | `dra4wfms-core` | workflow model, documents, AEA, TFC, Algorithm 1 |
//! | [`crypto`] | `dra-crypto` | Ed25519, X25519, ChaCha20, SHA-2, sealed boxes |
//! | [`xml`] | `dra-xml` | XML tree, canonicalization, element encryption, signatures |
//! | [`engine`] | `dra-engine` | the engine-based baseline WfMS (the comparator) |
//! | [`docpool`] | `dra-docpool` | HBase-style document pool + mini MapReduce |
//! | [`cloud`] | `dra-cloud` | portal servers, network sim, scenario runner |
//! | [`obs`] | `dra-obs` | virtual-time spans, metrics registry, trace exporters |
//!
//! See the `examples/` directory for runnable walkthroughs:
//!
//! * `quickstart` — a two-step workflow under the basic model
//! * `purchase_order` — the paper's Fig. 9 process under the advanced model
//! * `conflict_of_interest` — the Fig. 4 flow-concealment scenario
//! * `tamper_detection` — superuser tampering: engine baseline vs DRA4WfMS
//! * `cloud_scale` — many concurrent instances + MapReduce statistics

#![forbid(unsafe_code)]

pub mod cli;

pub use dra4wfms_core as core;
pub use dra_cloud as cloud;
pub use dra_crypto as crypto;
pub use dra_docpool as docpool;
pub use dra_engine as engine;
pub use dra_obs as obs;
pub use dra_xml as xml;

pub use dra4wfms_core::prelude;
pub use dra4wfms_core::prelude::*;
