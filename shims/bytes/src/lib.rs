//! Offline shim for `bytes`: a cheaply-cloneable contiguous byte container
//! (`Bytes`), a growable builder (`BytesMut`), and the `Buf`/`BufMut`
//! cursor traits — just the subset this workspace uses.
//!
//! `Bytes` is an `Arc<Vec<u8>>` plus a `[start, end)` window, so `clone`
//! and `split_to` are O(1) and share the underlying allocation like the
//! real crate (without the vtable machinery).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves share the same allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at} > {}", self.len());
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        Bytes::from(v.buf)
    }
}

/// A growable byte buffer implementing [`BufMut`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (network-order accessors).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Read `cnt` bytes into the start of `dst`... not needed; advance past `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write cursor over a growable byte sink (network-order accessors).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_u64() {
        let mut b = BytesMut::new();
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_shares_allocation() {
        let mut b = Bytes::from("hello world");
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(b.as_ref(), b" world");
        assert_eq!(head.to_vec(), b"hello".to_vec());
    }
}
