//! Offline shim for `parking_lot`: the non-poisoning `Mutex`/`RwLock` API
//! implemented over `std::sync`. A poisoned std lock (a thread panicked
//! while holding it) is transparently recovered, matching parking_lot's
//! behaviour of not propagating poison.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
