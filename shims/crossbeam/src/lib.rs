//! Offline shim for `crossbeam`: the scoped-thread API
//! (`crossbeam::thread::scope`, `Scope::spawn` taking a `|_|` closure)
//! implemented over `std::thread::scope`.
//!
//! Divergence from real crossbeam: a panicking child thread propagates the
//! panic out of `scope` (std semantics) instead of surfacing it as an `Err`.
//! Every call site in this workspace immediately `unwrap()`s the result, so
//! the observable behaviour — the process aborts the test with the panic
//! message — is the same.

/// Scoped threads.
pub mod thread {
    /// Handle passed to the `scope` closure; mirrors crossbeam's `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam-style) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let n = AtomicUsize::new(0);
        let n = &n;
        let total: usize = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    s.spawn(move |_| {
                        n.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
        assert_eq!(total, 28);
    }

    #[test]
    fn nested_spawn() {
        let r =
            crate::thread::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
                .unwrap();
        assert_eq!(r, 7);
    }
}
