//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! exposing the `criterion_group!`/`criterion_main!` entry points,
//! benchmark groups, throughput annotation, and `Bencher::iter`.
//!
//! Statistics are deliberately simple — each benchmark runs a warm-up pass
//! then `sample_size` timed samples, reporting min/mean/max per-iteration
//! time (plus derived throughput). There is no outlier analysis, plotting,
//! or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { samples: Vec::new(), sample_size, iters_per_sample: 1 }
    }

    /// Time `routine`, recording `sample_size` samples after a warm-up that
    /// also calibrates how many iterations each sample batches together.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for samples of at least ~1ms each.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn per_iter_stats(&self) -> Option<(Duration, Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let per_iter: Vec<Duration> =
            self.samples.iter().map(|d| *d / self.iters_per_sample as u32).collect();
        let min = *per_iter.iter().min().unwrap();
        let max = *per_iter.iter().max().unwrap();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        Some((min, mean, max))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some((min, mean, max)) = bencher.per_iter_stats() else {
        println!("{name:<40} (no samples)");
        return;
    };
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("sum", 10), |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
