//! Offline shim for `rand`: `thread_rng()`, the `RngCore`/`Rng`/`SeedableRng`
//! traits, and a seedable `StdRng` (xoshiro256** seeded via splitmix64).
//! Entropy for `thread_rng` comes from `/dev/urandom`, falling back to a
//! hash of the monotonic clock and thread id if that read fails.

use std::ops::Range;

/// Core random-number source: raw word and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly without a range (shim-internal).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`] (shim-internal).
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u8);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256** generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(mut seed_state: u64) -> StdRng {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut seed_state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// Per-thread RNG handle returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new(inner: StdRng) -> ThreadRng {
            ThreadRng { inner }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

fn os_seed() -> u64 {
    use std::io::Read;
    let mut seed = [0u8; 8];
    if std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut seed)).is_ok() {
        return u64::from_le_bytes(seed);
    }
    // Fallback: hash the monotonic clock and thread id.
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
        .hash(&mut h);
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// An OS-entropy-seeded RNG for the calling thread.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new(rngs::StdRng::from_state(os_seed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_varies() {
        let mut r = thread_rng();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
