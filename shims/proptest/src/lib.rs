//! Offline shim for `proptest`: a generate-only property-testing harness
//! exposing the subset of the proptest API this workspace uses.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its seed and message but is
//!   not minimised.
//! - **Deterministic seeding.** Each test derives its RNG stream from a
//!   hash of the test name plus the case number, so failures reproduce
//!   across runs without a persistence file.
//! - **Regex strategies** support the subset actually used here: literals,
//!   escapes, `.`, character classes with ranges, and `{m}`/`{m,n}`/
//!   `*`/`+`/`?` quantifiers (no groups or alternation).

pub mod test_runner {
    //! Config, error type, RNG, and the case-execution loop.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case random source handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Build from a 64-bit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform usize in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo <= hi, "empty range {lo}..={hi}");
            let span = (hi - lo) as u64;
            if span == u64::MAX {
                return self.next_u64() as usize;
            }
            lo + self.below(span + 1) as usize
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated; the run fails.
        Fail(String),
        /// A `prop_assume!` precondition failed; the case is discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A discarded case with a reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Drive a property: run cases until `config.cases` accepted, panicking
    /// on the first failure with the seed needed to reproduce it.
    pub fn execute<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(20) + 256 {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case {passed}, seed {seed:#x}):\n{msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Keep only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, reason, pred }
        }

        /// Build a recursive strategy: `self` generates leaves and `branch`
        /// wraps an inner strategy into a bigger value, nested up to
        /// `depth` levels. The size/branch hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from a nonempty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_in(0, self.0.len() - 1);
            self.0[idx].generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates in a row", self.reason);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i32 => u32, i64 => u64);

    /// A `&str` is a regex-subset strategy generating matching strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }

    /// A `Vec` of strategies generates element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Bias half the mass to printable ASCII, half to the full
            // scalar-value space (excluding surrogates).
            if rng.next_u32() & 1 == 0 {
                (0x20 + rng.below(0x5F) as u32) as u8 as char
            } else {
                loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        return c;
                    }
                }
            }
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64() as usize)
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    /// An abstract index resolvable against any nonempty collection length.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolve against a collection of `len` items (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.min, self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector with a size drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // The element domain may hold fewer than `target` distinct
            // values, so bound the attempts rather than insisting.
            let mut tries = 0usize;
            while set.len() < target && tries < 100 * target.max(1) {
                set.insert(self.element.generate(rng));
                tries += 1;
            }
            set
        }
    }

    /// A set with a size drawn from `size` (best-effort if the element
    /// domain is small) and elements from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 32]`.
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// A 32-element array with every element drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

pub mod string {
    //! Regex-subset string strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Parse error for an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Clone, Debug)]
    enum Node {
        Literal(char),
        /// Inclusive char ranges; a single char is a degenerate range.
        Class(Vec<(char, char)>),
        /// `.` — printable ASCII.
        AnyChar,
        Repeat(Box<Node>, u32, u32),
    }

    /// Strategy generating strings matching a regex-subset pattern.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        nodes: Vec<Node>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for node in &self.nodes {
                emit(node, rng, &mut out);
            }
            out
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyChar => out.push((0x20 + rng.below(0x5F) as u32) as u8 as char),
            Node::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        // Skip the surrogate gap if a range straddles it.
                        let v = *lo as u32 + pick as u32;
                        out.push(char::from_u32(v).unwrap_or(*lo));
                        return;
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range");
            }
            Node::Repeat(inner, min, max) => {
                let count = rng.usize_in(*min as usize, *max as usize);
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }

    fn parse_escape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Result<Vec<Node>, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut nodes: Vec<Node> = Vec::new();
        let mut i = 0usize;
        let err = |msg: String| Error(msg);
        while i < chars.len() {
            let c = chars[i];
            match c {
                '[' => {
                    i += 1;
                    let mut ranges: Vec<(char, char)> = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            if i >= chars.len() {
                                return Err(err("dangling escape in class".into()));
                            }
                            parse_escape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `a-z` range when '-' is not last-in-class
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                if i >= chars.len() {
                                    return Err(err("dangling escape in class".into()));
                                }
                                parse_escape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            if hi < lo {
                                return Err(err(format!("inverted range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if i >= chars.len() {
                        return Err(err("unterminated character class".into()));
                    }
                    i += 1; // consume ']'
                    if ranges.is_empty() {
                        return Err(err("empty character class".into()));
                    }
                    nodes.push(Node::Class(ranges));
                }
                '.' => {
                    nodes.push(Node::AnyChar);
                    i += 1;
                }
                '\\' => {
                    i += 1;
                    if i >= chars.len() {
                        return Err(err("dangling escape".into()));
                    }
                    nodes.push(Node::Literal(parse_escape(chars[i])));
                    i += 1;
                }
                '{' => {
                    let prev = nodes
                        .pop()
                        .ok_or_else(|| err("quantifier with nothing to repeat".into()))?;
                    i += 1;
                    let start = i;
                    while i < chars.len() && chars[i] != '}' {
                        i += 1;
                    }
                    if i >= chars.len() {
                        return Err(err("unterminated quantifier".into()));
                    }
                    let body: String = chars[start..i].iter().collect();
                    i += 1; // consume '}'
                    let (min, max) = match body.split_once(',') {
                        Some((m, n)) => {
                            let min = m
                                .trim()
                                .parse::<u32>()
                                .map_err(|_| err(format!("bad quantifier lower bound {m:?}")))?;
                            let max = if n.trim().is_empty() {
                                min + 8
                            } else {
                                n.trim()
                                    .parse::<u32>()
                                    .map_err(|_| err(format!("bad quantifier upper bound {n:?}")))?
                            };
                            (min, max)
                        }
                        None => {
                            let n = body
                                .trim()
                                .parse::<u32>()
                                .map_err(|_| err(format!("bad quantifier count {body:?}")))?;
                            (n, n)
                        }
                    };
                    if max < min {
                        return Err(err(format!("inverted quantifier {{{min},{max}}}")));
                    }
                    nodes.push(Node::Repeat(Box::new(prev), min, max));
                }
                '*' | '+' | '?' => {
                    let prev = nodes
                        .pop()
                        .ok_or_else(|| err("quantifier with nothing to repeat".into()))?;
                    let (min, max) = match c {
                        '*' => (0, 8),
                        '+' => (1, 8),
                        _ => (0, 1),
                    };
                    nodes.push(Node::Repeat(Box::new(prev), min, max));
                    i += 1;
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(err(format!(
                        "unsupported regex construct {c:?} (shim supports literals, \
                         classes, '.', and quantifiers)"
                    )));
                }
                other => {
                    nodes.push(Node::Literal(other));
                    i += 1;
                }
            }
        }
        Ok(nodes)
    }

    /// A strategy generating strings matching `pattern` (regex subset).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        Ok(RegexGeneratorStrategy { nodes: parse(pattern)? })
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::execute(
                &__config,
                stringify!($name),
                |__rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), __rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn regex_class_and_quantifier() {
        let s = crate::string::string_regex("[a-z][a-z0-9]{0,6}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(!v.is_empty() && v.len() <= 7, "bad sample {v:?}");
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_printable_space_tilde() {
        let s = crate::string::string_regex("[ -~]{0,24}").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn regex_rejects_groups() {
        assert!(crate::string::string_regex("(ab)+").is_err());
    }

    #[test]
    fn collection_vec_sizes() {
        let s = crate::collection::vec(any::<u8>(), 3usize);
        let mut r = rng();
        assert_eq!(s.generate(&mut r).len(), 3);
        let s = crate::collection::vec(any::<u8>(), 1..4);
        for _ in 0..50 {
            let n = s.generate(&mut r).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn btree_set_hits_reachable_targets() {
        let s = crate::collection::btree_set(0usize..=4, 1..=5);
        let mut r = rng();
        for _ in 0..50 {
            let set = s.generate(&mut r);
            assert!(!set.is_empty() && set.len() <= 5);
        }
    }

    #[test]
    fn union_and_recursive_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // only generated, never read — the test exercises termination
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..100 {
            let _ = strat.generate(&mut r);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..100, s in "[a-b]{2}", v in crate::collection::vec(any::<bool>(), 2)) {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), 2);
            prop_assert_ne!(v.len(), 3);
            prop_assume!(x != 99);
        }
    }
}
